//! Replayable artifacts: a fuzz case plus its expected final state,
//! rendered as a single annotated `.s` file.
//!
//! The format is line-oriented and assembler-adjacent so a human can
//! read the repro directly:
//!
//! ```text
//! # mfuzz artifact v1
//! # seed 0x000000000000002a
//! config softtlb 0
//! delegate 8 2
//! routine 2 skip
//! | rmr t0, m31
//! | addi t0, t0, 4
//! | wmr m31, t0
//! | mexit
//! guest
//! | li a0, 7
//! | ecall
//! | ebreak
//! expect halt ebreak 7
//! expect instret 3
//! expect reg 10 0x00000007
//! ```
//!
//! Expectations are taken from the **reference interpreter**, so a
//! replay passes only when both engines agree with each other *and*
//! with the recorded state — a divergence artifact keeps failing for
//! as long as the bug it witnesses exists.

use crate::exec::{BugKind, CaseResult, CaseRunner, EngineRun};
use crate::grammar::{FuzzCase, RoutineSpec};
use metal_pipeline::{HaltReason, TrapCause};

/// FNV-1a over bytes — the MRAM data-segment checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Renders a case and its reference run as an artifact.
#[must_use]
pub fn serialize(case: &FuzzCase, reference: &EngineRun) -> String {
    let mut out = String::new();
    out.push_str("# mfuzz artifact v1\n");
    out.push_str(&format!("# seed {:#018x}\n", case.seed));
    out.push_str(&format!("config softtlb {}\n", u32::from(case.soft_tlb)));
    for &(cause, entry) in &case.delegations {
        out.push_str(&format!("delegate {} {}\n", cause.code(), entry));
    }
    for r in &case.routines {
        out.push_str(&format!("routine {} {}\n", r.entry, r.name));
        for line in r.src.lines().map(str::trim).filter(|l| !l.is_empty()) {
            out.push_str(&format!("| {line}\n"));
        }
    }
    out.push_str("guest\n");
    for line in case.guest.lines().map(str::trim).filter(|l| !l.is_empty()) {
        out.push_str(&format!("| {line}\n"));
    }
    match &reference.halt {
        Some(HaltReason::Ebreak { code }) => {
            out.push_str(&format!("expect halt ebreak {code}\n"));
        }
        Some(HaltReason::Fatal(_)) => out.push_str("expect halt fatal\n"),
        // Budget-limited runs are hangs; artifacts never reach this
        // arm (hangs are discarded), but keep the mapping total.
        Some(HaltReason::Timeout) | None => out.push_str("expect halt none\n"),
    }
    out.push_str(&format!("expect instret {}\n", reference.instret));
    for (i, &v) in reference.regs.iter().enumerate() {
        if v != 0 {
            out.push_str(&format!("expect reg {i} {v:#010x}\n"));
        }
    }
    for (i, &v) in reference.mregs.iter().enumerate() {
        if v != 0 {
            out.push_str(&format!("expect mreg {i} {v:#010x}\n"));
        }
    }
    out.push_str(&format!(
        "expect mramsum {:#018x}\n",
        fnv1a(&reference.mram_data)
    ));
    out
}

/// What a replay must observe, parsed back from an artifact.
#[derive(Clone, Debug, Default)]
pub struct Expectations {
    /// Expected halt: `ebreak <code>`, `fatal`, or `none` (hang).
    pub halt: Option<String>,
    /// Expected retired-instruction count.
    pub instret: Option<u64>,
    /// Expected nonzero general registers.
    pub regs: Vec<(usize, u32)>,
    /// Expected nonzero Metal registers.
    pub mregs: Vec<(usize, u32)>,
    /// Expected MRAM data checksum.
    pub mramsum: Option<u64>,
}

fn parse_num(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad number {s:?}: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

/// Parses an artifact back into the case and its expectations.
pub fn parse(content: &str) -> Result<(FuzzCase, Expectations), String> {
    let mut case = FuzzCase {
        seed: 0,
        routines: Vec::new(),
        delegations: Vec::new(),
        soft_tlb: false,
        guest: String::new(),
    };
    let mut expect = Expectations::default();
    // Where `| ` body lines accumulate: None, the guest, or routine i.
    enum Section {
        None,
        Guest,
        Routine(usize),
    }
    let mut section = Section::None;
    for (ln, raw) in content.lines().enumerate() {
        let line = raw.trim();
        let err = |m: String| format!("line {}: {m}", ln + 1);
        if let Some(body) = line.strip_prefix('|') {
            let body = body.trim();
            let buf = match section {
                Section::Guest => &mut case.guest,
                Section::Routine(i) => &mut case.routines[i].src,
                Section::None => return Err(err("body line outside a section".into())),
            };
            if !buf.is_empty() {
                buf.push('\n');
            }
            buf.push_str(body);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# seed ") {
            case.seed = parse_num(rest).map_err(err)?;
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("config") => match (words.next(), words.next()) {
                (Some("softtlb"), Some(v)) => case.soft_tlb = v != "0",
                other => return Err(err(format!("bad config {other:?}"))),
            },
            Some("delegate") => {
                let code = words
                    .next()
                    .ok_or_else(|| err("delegate needs a cause".into()))
                    .and_then(|w| parse_num(w).map_err(err))?;
                let entry = words
                    .next()
                    .ok_or_else(|| err("delegate needs an entry".into()))
                    .and_then(|w| parse_num(w).map_err(err))?;
                let cause = TrapCause::from_code(code as u32)
                    .ok_or_else(|| err(format!("unknown trap cause {code}")))?;
                case.delegations.push((cause, entry as u8));
            }
            Some("routine") => {
                let entry = words
                    .next()
                    .ok_or_else(|| err("routine needs an entry".into()))
                    .and_then(|w| parse_num(w).map_err(err))?;
                let name = words.next().unwrap_or("unnamed").to_owned();
                case.routines.push(RoutineSpec::new(entry as u8, &name, ""));
                section = Section::Routine(case.routines.len() - 1);
            }
            Some("guest") => section = Section::Guest,
            Some("expect") => match words.next() {
                Some("halt") => {
                    expect.halt = Some(words.collect::<Vec<_>>().join(" "));
                }
                Some("instret") => {
                    let n = words
                        .next()
                        .ok_or_else(|| err("expect instret needs a value".into()))?;
                    expect.instret = Some(parse_num(n).map_err(err)?);
                }
                Some(which @ ("reg" | "mreg")) => {
                    let n = words
                        .next()
                        .ok_or_else(|| err("expect reg needs an index".into()))
                        .and_then(|w| parse_num(w).map_err(err))?;
                    let v = words
                        .next()
                        .ok_or_else(|| err("expect reg needs a value".into()))
                        .and_then(|w| parse_num(w).map_err(err))?;
                    let list = if which == "reg" {
                        &mut expect.regs
                    } else {
                        &mut expect.mregs
                    };
                    list.push((n as usize, v as u32));
                }
                Some("mramsum") => {
                    let n = words
                        .next()
                        .ok_or_else(|| err("expect mramsum needs a value".into()))?;
                    expect.mramsum = Some(parse_num(n).map_err(err)?);
                }
                other => return Err(err(format!("unknown expectation {other:?}"))),
            },
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    Ok((case, expect))
}

fn halt_string(halt: &Option<HaltReason>) -> String {
    match halt {
        Some(HaltReason::Ebreak { code }) => format!("ebreak {code}"),
        Some(HaltReason::Fatal(_)) => "fatal".to_owned(),
        Some(HaltReason::Timeout) | None => "none".to_owned(),
    }
}

/// Checks a fresh run against an artifact's expectations.
fn check(result: &CaseResult, expect: &Expectations) -> Result<(), String> {
    if let Some(d) = &result.divergence {
        return Err(format!("engines diverged: {d}"));
    }
    let run = &result.interp;
    if let Some(want) = &expect.halt {
        let got = halt_string(&run.halt);
        if &got != want {
            return Err(format!("halt: expected {want:?}, got {got:?}"));
        }
    }
    if let Some(want) = expect.instret {
        if run.instret != want {
            return Err(format!("instret: expected {want}, got {}", run.instret));
        }
    }
    for &(i, want) in &expect.regs {
        if run.regs[i] != want {
            return Err(format!(
                "x{i}: expected {want:#010x}, got {:#010x}",
                run.regs[i]
            ));
        }
    }
    for &(i, want) in &expect.mregs {
        if run.mregs[i] != want {
            return Err(format!(
                "m{i}: expected {want:#010x}, got {:#010x}",
                run.mregs[i]
            ));
        }
    }
    if let Some(want) = expect.mramsum {
        let got = fnv1a(&run.mram_data);
        if got != want {
            return Err(format!(
                "mram checksum: expected {want:#018x}, got {got:#018x}"
            ));
        }
    }
    Ok(())
}

/// Replays an artifact under `bug` injection; `Err` describes the first
/// divergence or expectation mismatch.
pub fn replay(content: &str, bug: BugKind) -> Result<(), String> {
    let (case, expect) = parse(content)?;
    let mut runner = CaseRunner::new(bug);
    let result = runner.run(&case).map_err(|e| e.0)?;
    check(&result, &expect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar;

    /// Serialization normalizes whitespace (trims lines, drops blank
    /// ones), so roundtrip equality is up to that normalization.
    fn normalize(src: &str) -> String {
        src.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn roundtrip_preserves_case() {
        let mut runner = CaseRunner::new(BugKind::None);
        for seed in [7u64, 42, 1013] {
            let case = grammar::generate(seed);
            let result = runner.run(&case).unwrap();
            let text = serialize(&case, &result.interp);
            let (parsed, expect) = parse(&text).unwrap();
            assert_eq!(parsed.guest, normalize(&case.guest), "seed {seed}");
            assert_eq!(parsed.delegations, case.delegations);
            assert_eq!(parsed.soft_tlb, case.soft_tlb);
            assert_eq!(parsed.seed, case.seed);
            assert_eq!(parsed.routines.len(), case.routines.len(), "seed {seed}");
            for (a, b) in parsed.routines.iter().zip(&case.routines) {
                assert_eq!(a.entry, b.entry);
                assert_eq!(a.src, normalize(&b.src));
            }
            assert!(expect.instret.is_some());
        }
    }

    #[test]
    fn replay_of_recorded_run_passes() {
        let mut runner = CaseRunner::new(BugKind::None);
        let case = grammar::generate(3);
        let result = runner.run(&case).unwrap();
        assert!(result.divergence.is_none() && !result.hang);
        let text = serialize(&case, &result.interp);
        replay(&text, BugKind::None).expect("recorded run replays clean");
    }

    #[test]
    fn replay_detects_tampered_expectation() {
        let mut runner = CaseRunner::new(BugKind::None);
        let case = grammar::generate(3);
        let result = runner.run(&case).unwrap();
        // Mangle the recorded instret to a wrong value.
        let mut lines: Vec<String> = serialize(&case, &result.interp)
            .lines()
            .map(str::to_owned)
            .collect();
        for l in &mut lines {
            if l.starts_with("expect instret") {
                *l = "expect instret 999999".to_owned();
            }
        }
        let err = replay(&lines.join("\n"), BugKind::None).unwrap_err();
        assert!(err.contains("instret"), "{err}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("frobnicate 1 2\n").is_err());
        assert!(parse("| stray body line\n").is_err());
        assert!(parse("delegate 99999 2\n").is_err());
    }
}
