//! Case execution: three persistent engines reset by snapshot/restore.
//!
//! A [`CaseRunner`] owns a pipelined core (decode cache on), a second
//! pipelined core (decode cache off), and the reference interpreter,
//! each constructed **once**. Between cases the machines are rewound
//! with [`metal_pipeline::Engine::restore`] — a RAM memcpy plus field
//! copies, microseconds instead of a rebuild — and only the per-case
//! Metal extension (mroutines, delegations) is constructed fresh.
//!
//! The differential oracle is two-sided:
//!
//! * **cross-engine**: core (decode cache on) vs interpreter must agree
//!   on halt, registers, Metal registers, MRAM data, Metal stats,
//!   `instret`, and the retirement order;
//! * **cross-configuration**: the two cores must agree on *cycle
//!   counts* — the decode cache is a host-side optimization and any
//!   timing perturbation is a bug.

use crate::grammar::FuzzCase;
use metal_core::{Metal, MetalBuilder, MetalStats};
use metal_isa::insn::{Insn, MulOp};
use metal_isa::DispatchTag;
use metal_pipeline::hooks::{CustomExec, DecodeOutcome, TrapDisposition, TrapEvent};
use metal_pipeline::state::{CoreConfig, MachineState, TranslationMode};
use metal_pipeline::{Core, Engine, EngineSnapshot, HaltReason, Hooks, Interp, Trap};
use metal_trace::{Event, EventKind, TraceConfig, TraceHandle};

/// Cycle budget per case on the pipelined cores.
pub const CORE_LIMIT: u64 = 2_000_000;
/// Step budget per case on the interpreter.
pub const INTERP_LIMIT: u64 = 1_000_000;

/// Retirement PCs recorded per run (the tail is summarized by count).
const RETIRE_CAP: usize = 4096;

/// A deliberately injected engine bug, used to validate that the fuzzer
/// finds and shrinks real divergences (`mfuzz --inject-bug`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BugKind {
    /// No bug: engines should always agree.
    None,
    /// Flip the low result bit of every retired `mul` on the pipelined
    /// cores only — a subtle single-instruction corruption.
    MulLowBit,
}

impl BugKind {
    /// Parses the `--inject-bug` operand.
    #[must_use]
    pub fn parse(s: &str) -> Option<BugKind> {
        match s {
            "none" => Some(BugKind::None),
            "mul" => Some(BugKind::MulLowBit),
            _ => None,
        }
    }
}

/// The fuzzer's [`Hooks`]: the real Metal extension plus retirement
/// observation (dispatch tags, retirement order) and optional bug
/// injection. Every extension decision is delegated to Metal verbatim,
/// so behavior with `BugKind::None` is bit-identical to running Metal
/// directly.
#[derive(Clone)]
pub struct FuzzHooks {
    /// The wrapped extension.
    pub metal: Metal,
    /// The injected bug, if any.
    pub bug: BugKind,
    /// Bitmask of [`DispatchTag`]s seen at retirement.
    pub tags: u32,
    /// First [`RETIRE_CAP`] retired PCs.
    pub retired: Vec<u32>,
    /// Total retirements (beyond the recorded prefix).
    pub retired_total: u64,
}

impl FuzzHooks {
    /// Wraps an extension.
    #[must_use]
    pub fn new(metal: Metal, bug: BugKind) -> FuzzHooks {
        FuzzHooks {
            metal,
            bug,
            tags: 0,
            retired: Vec::new(),
            retired_total: 0,
        }
    }
}

fn tag_bit(insn: &Insn) -> u32 {
    let tag = metal_isa::decoded::DecodedInsn::from_insn(0, *insn).tag;
    1 << match tag {
        DispatchTag::Simple => 0,
        DispatchTag::Load => 1,
        DispatchTag::Store => 2,
        DispatchTag::PhysMem => 3,
        DispatchTag::Control => 4,
        DispatchTag::Illegal => 5,
    }
}

impl Hooks for FuzzHooks {
    fn fetch(&mut self, state: &mut MachineState, pc: u32) -> Option<Result<(u32, u32), Trap>> {
        self.metal.fetch(state, pc)
    }

    fn fetch_decoded(
        &mut self,
        state: &mut MachineState,
        pc: u32,
    ) -> Option<Result<(metal_isa::DecodedInsn, u32), Trap>> {
        self.metal.fetch_decoded(state, pc)
    }

    fn decode_is_sensitive(&self, state: &MachineState, word: u32, insn: &Insn) -> bool {
        self.metal.decode_is_sensitive(state, word, insn)
    }

    fn decode(
        &mut self,
        state: &mut MachineState,
        pc: u32,
        word: u32,
        insn: &Insn,
    ) -> DecodeOutcome {
        self.metal.decode(state, pc, word, insn)
    }

    fn exec_custom(
        &mut self,
        state: &mut MachineState,
        pc: u32,
        word: u32,
        insn: &Insn,
        rs1: u32,
        rs2: u32,
    ) -> Result<CustomExec, Trap> {
        self.metal.exec_custom(state, pc, word, insn, rs1, rs2)
    }

    fn on_trap(&mut self, state: &mut MachineState, event: &TrapEvent) -> TrapDisposition {
        self.metal.on_trap(state, event)
    }

    fn interrupts_allowed(&self, state: &MachineState) -> bool {
        self.metal.interrupts_allowed(state)
    }

    fn on_retire(&mut self, state: &mut MachineState, pc: u32, insn: &Insn) {
        self.metal.on_retire(state, pc, insn);
        self.tags |= tag_bit(insn);
        if self.retired.len() < RETIRE_CAP {
            self.retired.push(pc);
        }
        self.retired_total += 1;
        if self.bug == BugKind::MulLowBit {
            if let Insn::MulDiv {
                op: MulOp::Mul, rd, ..
            } = insn
            {
                state.regs.set(*rd, state.regs.get(*rd) ^ 1);
            }
        }
    }
}

/// Everything observed from one engine's run of one case.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// How (and whether) the machine halted.
    pub halt: Option<HaltReason>,
    /// Final general-purpose registers.
    pub regs: [u32; 32],
    /// Final Metal registers m0..m31.
    pub mregs: [u32; 32],
    /// Final MRAM private-data segment.
    pub mram_data: Vec<u8>,
    /// Metal transition/delegation counters.
    pub stats: MetalStats,
    /// Final ASID.
    pub asid: u16,
    /// Elapsed cycles (steps on the interpreter).
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Retirement order (first [`RETIRE_CAP`] PCs) and total count.
    pub retired: Vec<u32>,
    /// Total retirements.
    pub retired_total: u64,
    /// The run's trace events (coverage input).
    pub events: Vec<Event>,
    /// Dispatch tags retired, as a bitmask.
    pub tags: u32,
}

/// Discriminant of the halt shape, a coverage feature.
#[must_use]
pub fn halt_kind(halt: &Option<HaltReason>) -> u32 {
    match halt {
        // A budget-limited run looks like "still running" to coverage,
        // exactly as the pre-watchdog `None` did.
        None | Some(HaltReason::Timeout) => 0,
        Some(HaltReason::Ebreak { .. }) => 1,
        Some(HaltReason::Fatal(_)) => 2,
    }
}

/// The outcome of running one case on all three machines.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// A human-readable divergence description, if any oracle fired.
    pub divergence: Option<String>,
    /// True when either engine hit its budget without halting: the run
    /// is not comparable (the budgets are in different units) and the
    /// case is discarded rather than diffed.
    pub hang: bool,
    /// The decode-cache-enabled core's run (the coverage source).
    pub core: EngineRun,
    /// The reference interpreter's run (the expectation source).
    pub interp: EngineRun,
}

/// Why a case could not be run at all (malformed candidate — the
/// shrinker treats these as uninteresting, the campaign as a generator
/// bug).
#[derive(Clone, Debug)]
pub struct BuildError(pub String);

/// Three persistent engines plus their pristine snapshots.
pub struct CaseRunner {
    core_dc: Core<FuzzHooks>,
    core_nodc: Core<FuzzHooks>,
    interp: Interp<FuzzHooks>,
    pristine_dc: EngineSnapshot<FuzzHooks>,
    pristine_nodc: EngineSnapshot<FuzzHooks>,
    pristine_interp: EngineSnapshot<FuzzHooks>,
    bug: BugKind,
}

/// RAM size of the fuzzing machines — small keeps restore fast.
pub const FUZZ_RAM: usize = 1 << 20;

fn fuzz_config(decode_cache: bool) -> CoreConfig {
    CoreConfig {
        ram_bytes: FUZZ_RAM,
        decode_cache,
        ..CoreConfig::default()
    }
}

fn empty_hooks() -> FuzzHooks {
    FuzzHooks::new(
        Metal::new(metal_core::MetalConfig::default()),
        BugKind::None,
    )
}

impl CaseRunner {
    /// Builds the three machines and their pristine snapshots. `bug` is
    /// applied to the pipelined cores only (the interpreter stays the
    /// trusted reference).
    #[must_use]
    pub fn new(bug: BugKind) -> CaseRunner {
        let core_dc = Core::new(fuzz_config(true), empty_hooks());
        let core_nodc = Core::new(fuzz_config(false), empty_hooks());
        let interp = Interp::new(fuzz_config(true), empty_hooks());
        CaseRunner {
            pristine_dc: core_dc.snapshot(),
            pristine_nodc: core_nodc.snapshot(),
            pristine_interp: interp.snapshot(),
            core_dc,
            core_nodc,
            interp,
            bug,
        }
    }

    /// Builds the per-case Metal extension and assembles the guest.
    fn prepare(case: &FuzzCase) -> Result<(Metal, Vec<u8>), BuildError> {
        let mut builder = MetalBuilder::new();
        for r in &case.routines {
            builder = builder.routine(r.entry, &r.name, &r.src);
        }
        for &(cause, entry) in &case.delegations {
            builder = builder.delegate_exception(cause, entry);
        }
        let (metal, palcode, _warnings) = builder
            .build()
            .map_err(|e| BuildError(format!("metal build: {e:?}")))?;
        debug_assert!(palcode.is_empty(), "fuzz cases use MRAM dispatch");
        let words = metal_asm::assemble_at(&case.guest, 0)
            .map_err(|e| BuildError(format!("guest assembly: {e}")))?;
        let program = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        Ok((metal, program))
    }

    fn run_one<E: Engine<Hooks = FuzzHooks>>(
        engine: &mut E,
        pristine: &EngineSnapshot<FuzzHooks>,
        metal: &Metal,
        bug: BugKind,
        soft_tlb: bool,
        program: &[u8],
        limit: u64,
    ) -> EngineRun {
        engine.restore(pristine);
        *engine.hooks_mut() = FuzzHooks::new(metal.clone(), bug);
        engine
            .state_mut()
            .set_trace(TraceHandle::enabled(TraceConfig {
                capacity: 1 << 15,
                ..TraceConfig::default()
            }));
        if soft_tlb {
            engine.state_mut().translation = TranslationMode::SoftTlb;
        }
        engine.load_segments([(0u32, program)], 0);
        let halt = Some(engine.run_fuel(limit));
        let state = engine.state();
        let hooks = engine.hooks();
        let mut mregs = [0u32; 32];
        for (n, m) in mregs.iter_mut().enumerate() {
            *m = hooks.metal.mregs.get(n);
        }
        EngineRun {
            halt,
            regs: state.regs.snapshot(),
            mregs,
            mram_data: hooks.metal.mram.data().to_vec(),
            stats: hooks.metal.stats,
            asid: state.asid,
            cycles: state.perf.cycles,
            instret: state.perf.instret,
            retired: hooks.retired.clone(),
            retired_total: hooks.retired_total,
            events: state.trace.events(),
            tags: hooks.tags,
        }
    }

    /// Runs one case on all three machines and applies both oracles.
    pub fn run(&mut self, case: &FuzzCase) -> Result<CaseResult, BuildError> {
        let (metal, program) = Self::prepare(case)?;
        let core = Self::run_one(
            &mut self.core_dc,
            &self.pristine_dc,
            &metal,
            self.bug,
            case.soft_tlb,
            &program,
            CORE_LIMIT,
        );
        let nodc = Self::run_one(
            &mut self.core_nodc,
            &self.pristine_nodc,
            &metal,
            self.bug,
            case.soft_tlb,
            &program,
            CORE_LIMIT,
        );
        let interp = Self::run_one(
            &mut self.interp,
            &self.pristine_interp,
            &metal,
            BugKind::None,
            case.soft_tlb,
            &program,
            INTERP_LIMIT,
        );
        let hang = [&core, &nodc, &interp]
            .iter()
            .any(|r| matches!(r.halt, None | Some(HaltReason::Timeout)));
        let divergence = if hang {
            None
        } else {
            diff_runs(&core, &nodc, &interp)
        };
        Ok(CaseResult {
            divergence,
            hang,
            core,
            interp,
        })
    }
}

/// Compares the three runs; `Some(description)` on the first mismatch.
fn diff_runs(core: &EngineRun, nodc: &EngineRun, interp: &EngineRun) -> Option<String> {
    // Cross-engine: core (decode cache on) vs the reference interpreter.
    if core.halt != interp.halt {
        return Some(format!(
            "halt: core={:?} interp={:?}",
            core.halt, interp.halt
        ));
    }
    if matches!(core.halt, Some(HaltReason::Fatal(_))) {
        // A Fatal stop is a simulator abort, not architectural
        // behavior: the pipeline abandons older in-flight instructions
        // (they never reach writeback), so fine-grained state is
        // best-effort there. Both engines agreeing on the identical
        // fatal message (cause, pc, tval) is the whole contract; the
        // two pipelined cores are still held to full equality below.
        return diff_cores(core, nodc);
    }
    for i in 0..32 {
        if core.regs[i] != interp.regs[i] {
            return Some(format!(
                "x{i}: core={:#010x} interp={:#010x}",
                core.regs[i], interp.regs[i]
            ));
        }
        if core.mregs[i] != interp.mregs[i] {
            return Some(format!(
                "m{i}: core={:#010x} interp={:#010x}",
                core.mregs[i], interp.mregs[i]
            ));
        }
    }
    if core.mram_data != interp.mram_data {
        return Some("MRAM data segments differ".to_owned());
    }
    if core.stats != interp.stats {
        return Some(format!(
            "Metal stats: core={:?} interp={:?}",
            core.stats, interp.stats
        ));
    }
    if core.asid != interp.asid {
        return Some(format!("asid: core={} interp={}", core.asid, interp.asid));
    }
    if core.instret != interp.instret {
        return Some(format!(
            "instret: core={} interp={}",
            core.instret, interp.instret
        ));
    }
    if core.retired_total != interp.retired_total || core.retired != interp.retired {
        let first = core
            .retired
            .iter()
            .zip(&interp.retired)
            .position(|(a, b)| a != b);
        return Some(format!(
            "retirement order diverged (first mismatch at index {first:?})"
        ));
    }
    diff_cores(core, nodc)
}

/// Cross-configuration oracle: the decode cache must not perturb
/// timing or architecture.
fn diff_cores(core: &EngineRun, nodc: &EngineRun) -> Option<String> {
    if core.halt != nodc.halt {
        return Some(format!(
            "decode cache perturbed halt: on={:?} off={:?}",
            core.halt, nodc.halt
        ));
    }
    if core.cycles != nodc.cycles {
        return Some(format!(
            "decode cache perturbed cycles: on={} off={}",
            core.cycles, nodc.cycles
        ));
    }
    if core.regs != nodc.regs || core.retired != nodc.retired {
        return Some("decode cache perturbed architectural state".to_owned());
    }
    None
}

/// The retirement-order events of a run, for tests that want to inspect
/// the sequence the trace saw (pipeline only; the interpreter reports
/// through [`EngineRun::retired`]).
#[must_use]
pub fn retire_pcs(events: &[Event]) -> Vec<u32> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Retire { pc } => Some(pc),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar;

    #[test]
    fn clean_engines_agree_over_many_seeds() {
        let mut runner = CaseRunner::new(BugKind::None);
        let mut agreed = 0;
        for seed in 0..60u64 {
            let case = grammar::generate(seed);
            let res = runner.run(&case).expect("generated cases build");
            assert!(
                res.divergence.is_none(),
                "seed {seed} diverged: {}\nguest:\n{}",
                res.divergence.unwrap(),
                case.guest
            );
            if !res.hang {
                agreed += 1;
            }
        }
        assert!(agreed > 50, "most cases must terminate, got {agreed}");
    }

    #[test]
    fn injected_bug_is_observable() {
        let mut runner = CaseRunner::new(BugKind::MulLowBit);
        let case = FuzzCase {
            seed: 0,
            routines: vec![],
            delegations: vec![],
            soft_tlb: false,
            guest: "li a0, 3\nli a1, 5\nmul a0, a0, a1\nebreak".to_owned(),
        };
        let res = runner.run(&case).unwrap();
        let what = res.divergence.expect("bug must diverge");
        assert!(what.contains("core"), "{what}");
    }

    #[test]
    fn persistent_runner_is_coherent_across_cases() {
        // State must not leak between cases: running A, then B, then A
        // again reproduces A's first result exactly.
        let mut runner = CaseRunner::new(BugKind::None);
        let a = grammar::generate(11);
        let b = grammar::generate(12);
        let first = runner.run(&a).unwrap();
        runner.run(&b).unwrap();
        let again = runner.run(&a).unwrap();
        assert_eq!(first.core.regs, again.core.regs);
        assert_eq!(first.core.cycles, again.core.cycles);
        assert_eq!(first.core.instret, again.core.instret);
        assert_eq!(first.interp.regs, again.interp.regs);
        assert_eq!(first.core.events.len(), again.core.events.len());
    }
}
