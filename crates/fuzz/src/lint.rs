//! Simulator-validated lint soundness.
//!
//! `metal-lint` makes claims about programs it has never run: an
//! mroutine with no bounds denial and no unresolved `mld`/`mst` must
//! never raise an MRAM data-access fault; a guest with no privilege
//! denial must never trap on a Metal-only instruction outside Metal
//! mode. This module checks those claims against what the engines
//! *actually did* — the trace event streams both engines produce for
//! every fuzz case — and turns any disagreement into a first-class
//! fuzz finding, shrunk and serialized like an engine divergence.
//!
//! The comparison is deliberately one-directional. A **denial** that
//! never faults at runtime is fine (the denied path may simply not
//! have been taken on this input); a **clean verdict** that faults is
//! a lint soundness bug, full stop. Claims are three-valued:
//!
//! * [`Claim::Clean`] — the analysis proved the property; a runtime
//!   fault contradicts it.
//! * [`Claim::Denied`] — the analysis flagged the property; a runtime
//!   fault *agrees* with it.
//! * [`Claim::Unknown`] — the analysis abstained (an unresolved
//!   address, a computed jump); runtime behavior proves nothing.

use crate::grammar::FuzzCase;
use metal_lint::checks::{analyze, UnitReport};
use metal_lint::{Check, Level, LintConfig, MRAM_BASE};
use metal_trace::Event;
use metal_trace::EventKind;

/// `mcause` code for an illegal-instruction trap.
const CODE_ILLEGAL: u32 = 2;
/// `mcause` code for a load access fault (MRAM `mld` out of bounds).
const CODE_LOAD_FAULT: u32 = 5;
/// `mcause` code for a store access fault (MRAM `mst` out of bounds).
const CODE_STORE_FAULT: u32 = 7;

/// What the analysis asserts about one property of one unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Claim {
    /// Proven: a runtime fault contradicts the analysis.
    Clean,
    /// Flagged statically: a runtime fault agrees.
    Denied,
    /// Abstained: runtime behavior proves nothing.
    Unknown,
}

/// One linted code unit: the guest program or one mroutine.
pub struct LintUnit {
    /// Routine name, or `"guest"`.
    pub name: String,
    /// Address the unit was assembled and analyzed at.
    pub base: u32,
    /// The assembled words (the static image the claims are about).
    pub words: Vec<u32>,
    /// The full lint report.
    pub report: UnitReport,
}

impl LintUnit {
    /// The static instruction word at `pc`, if `pc` lies in this unit.
    #[must_use]
    pub fn word_at(&self, pc: u32) -> Option<u32> {
        let off = pc.checked_sub(self.base)?;
        if off % 4 != 0 {
            return None;
        }
        self.words.get((off / 4) as usize).copied()
    }

    fn has_denial(&self, check: Check) -> bool {
        self.report
            .diagnostics
            .iter()
            .any(|d| d.level == Level::Deny && d.check == check)
    }

    /// The unit's claim about MRAM data-segment bounds.
    #[must_use]
    pub fn bounds_claim(&self) -> Claim {
        if self.has_denial(Check::Bounds) {
            Claim::Denied
        } else if self.report.unresolved_accesses > 0 {
            Claim::Unknown
        } else {
            Claim::Clean
        }
    }

    /// The unit's claim about mode correctness (no Metal-only
    /// instruction reachable outside Metal mode). Reachability is
    /// over-approximated in the presence of computed jumps, so a static
    /// image with no denial is clean — unless the faulting word is not
    /// in the image at all (self-modifying code), which callers screen
    /// out via [`LintUnit::word_at`].
    #[must_use]
    pub fn privilege_claim(&self) -> Claim {
        if self.has_denial(Check::Privilege) {
            Claim::Denied
        } else {
            Claim::Clean
        }
    }
}

/// The lint view of a whole fuzz case.
pub struct CaseLint {
    /// The guest program, analyzed as a normal-mode program at 0.
    pub guest: LintUnit,
    /// Each mroutine, analyzed at its MRAM install address.
    pub routines: Vec<LintUnit>,
}

impl CaseLint {
    /// The mroutine whose code window contains `pc`.
    #[must_use]
    pub fn routine_at(&self, pc: u32) -> Option<&LintUnit> {
        self.routines
            .iter()
            .find(|u| pc >= u.base && pc < u.base + (u.words.len() as u32) * 4)
    }
}

/// Lints every unit of a case exactly as the loader would install it:
/// mroutines are assembled in order at sequential MRAM addresses, the
/// guest at 0 as a normal-mode program.
pub fn lint_case(case: &FuzzCase) -> Result<CaseLint, String> {
    let nested = false; // CaseRunner builds single-layer machines
    let mut routines = Vec::new();
    let mut base = MRAM_BASE;
    for r in &case.routines {
        let words =
            metal_asm::assemble_at(&r.src, base).map_err(|e| format!("routine {}: {e}", r.name))?;
        let mut config = LintConfig::mroutine(base);
        config.nested_allowed = nested;
        let report = analyze(&words, &config, None);
        let len = (words.len() as u32) * 4;
        routines.push(LintUnit {
            name: r.name.clone(),
            base,
            words,
            report,
        });
        base += len;
    }
    let guest_words = metal_asm::assemble_at(&case.guest, 0).map_err(|e| format!("guest: {e}"))?;
    let config = LintConfig::program(0);
    let report = analyze(&guest_words, &config, None);
    Ok(CaseLint {
        guest: LintUnit {
            name: "guest".to_owned(),
            base: 0,
            words: guest_words,
            report,
        },
        routines,
    })
}

/// Scans one engine's event stream for a fault that contradicts a
/// clean lint claim. Returns the finding description, if any.
#[must_use]
pub fn check_events(lint: &CaseLint, engine: &str, events: &[Event]) -> Option<String> {
    for ev in events {
        let EventKind::Trap { code, tval, pc } = ev.kind else {
            continue;
        };
        if let Some(what) = check_trap(lint, engine, code, tval, pc) {
            return Some(what);
        }
    }
    None
}

/// Judges a single architectural trap against the lint claims.
fn check_trap(lint: &CaseLint, engine: &str, code: u32, tval: u32, pc: u32) -> Option<String> {
    match code {
        CODE_ILLEGAL => {
            // A privilege violation is an illegal-instruction trap on a
            // word that *does* decode — to a Metal-only instruction —
            // outside the MRAM window (i.e. outside Metal mode).
            if pc >= MRAM_BASE {
                return None;
            }
            let d = metal_isa::decode_to(tval);
            if d.is_illegal() || !d.insn.metal_mode_only() {
                return None;
            }
            // Self-modifying or out-of-image execution: the trapping
            // word must be the one the analysis actually saw.
            if lint.guest.word_at(pc) != Some(tval) {
                return None;
            }
            (lint.guest.privilege_claim() == Claim::Clean).then(|| {
                format!(
                    "lint soundness: guest lints privilege-clean but {engine} trapped on \
                     Metal-only `{}` at pc {pc:#010x}",
                    metal_isa::disassemble(&d.insn)
                )
            })
        }
        CODE_LOAD_FAULT | CODE_STORE_FAULT => {
            // An MRAM data fault: the trap fires at an MRAM pc and the
            // faulting instruction is an `mld`/`mst` of the static image.
            let unit = lint.routine_at(pc)?;
            let word = unit.word_at(pc)?;
            let d = metal_isa::decode_to(word);
            if !matches!(
                d.insn,
                metal_isa::Insn::Mld { .. } | metal_isa::Insn::Mst { .. }
            ) {
                return None;
            }
            (unit.bounds_claim() == Claim::Clean).then(|| {
                format!(
                    "lint soundness: mroutine `{}` lints bounds-clean but {engine} raised \
                     an MRAM data access fault (offset {tval:#x}) at pc {pc:#010x}",
                    unit.name
                )
            })
        }
        _ => None,
    }
}

/// Lints a case and compares the verdict with both engines' runs.
/// `Ok(Some(..))` is a soundness finding; `Err` means the case did not
/// assemble (the runner would have rejected it too).
pub fn check_case(
    case: &FuzzCase,
    core_events: &[Event],
    interp_events: &[Event],
) -> Result<Option<String>, String> {
    let lint = lint_case(case)?;
    Ok(check_events(&lint, "core", core_events)
        .or_else(|| check_events(&lint, "interp", interp_events)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{BugKind, CaseRunner};
    use crate::grammar::{self, RoutineSpec};
    use metal_isa::{encode, Insn};

    fn event(code: u32, tval: u32, pc: u32) -> Event {
        Event {
            cycle: 0,
            kind: EventKind::Trap { code, tval, pc },
        }
    }

    /// Generated cases never contradict their own lint verdict: run a
    /// seed sweep and check both engines' event streams.
    #[test]
    fn generated_cases_have_no_false_clean_verdicts() {
        let mut runner = CaseRunner::new(BugKind::None);
        for seed in 0..40u64 {
            let case = grammar::generate(seed);
            let Ok(result) = runner.run(&case) else {
                continue;
            };
            if result.hang {
                continue;
            }
            let finding = check_case(&case, &result.core.events, &result.interp.events)
                .expect("generated cases assemble");
            assert_eq!(finding, None, "seed {seed}: {finding:?}");
        }
    }

    /// An injected out-of-bounds `mst` is caught statically (claim
    /// Denied), so the runtime fault it raises *agrees* with the lint
    /// rather than contradicting it.
    #[test]
    fn injected_oob_store_is_flagged_not_a_finding() {
        let case = FuzzCase {
            seed: 0,
            routines: vec![RoutineSpec::new(
                0,
                "oob",
                "li t0, 4096\nmst a0, 0(t0)\nmexit",
            )],
            delegations: vec![],
            soft_tlb: false,
            guest: "menter 0\nebreak".to_owned(),
        };
        let lint = lint_case(&case).unwrap();
        assert_eq!(lint.routines[0].bounds_claim(), Claim::Denied);
        let mut runner = CaseRunner::new(BugKind::None);
        let result = runner.run(&case).unwrap();
        // The store really does fault at runtime...
        let faulted = result.core.events.iter().any(|e| {
            matches!(e.kind, EventKind::Trap { code, pc, .. }
                if code == CODE_STORE_FAULT && pc >= MRAM_BASE)
        });
        assert!(faulted, "expected a runtime MRAM store fault");
        // ...and the oracle reports agreement, not a finding.
        let finding = check_case(&case, &result.core.events, &result.interp.events).unwrap();
        assert_eq!(finding, None);
    }

    /// The finding path itself: fake an engine that executed code the
    /// analysis proved unreachable. The guest jumps over its `mexit`,
    /// so lint is privilege-clean; a fabricated trap on that `mexit`
    /// must surface as a soundness finding.
    #[test]
    fn fabricated_fault_on_clean_unit_is_a_finding() {
        let case = FuzzCase {
            seed: 0,
            routines: vec![],
            delegations: vec![],
            soft_tlb: false,
            guest: "jal zero, skip\nmexit\nskip: ebreak".to_owned(),
        };
        let lint = lint_case(&case).unwrap();
        assert_eq!(lint.guest.privilege_claim(), Claim::Clean);
        let mexit = encode(&Insn::Mexit);
        assert_eq!(lint.guest.word_at(4), Some(mexit));
        let finding = check_events(&lint, "core", &[event(CODE_ILLEGAL, mexit, 4)]);
        assert!(
            finding.as_deref().unwrap_or("").contains("privilege-clean"),
            "{finding:?}"
        );
        // The same trap at a pc outside the static image is screened
        // out (could be self-modifying or generated code).
        assert_eq!(
            check_events(&lint, "core", &[event(CODE_ILLEGAL, mexit, 0x4000)]),
            None
        );
    }

    /// A bounds fault against a routine whose access the analysis could
    /// not resolve is Unknown, not a finding.
    #[test]
    fn unresolved_access_never_produces_findings() {
        let case = FuzzCase {
            seed: 0,
            routines: vec![RoutineSpec::new(
                0,
                "dyn",
                "rmr t0, m1\nmld a0, 0(t0)\nmexit",
            )],
            delegations: vec![],
            soft_tlb: false,
            guest: "menter 0\nebreak".to_owned(),
        };
        let lint = lint_case(&case).unwrap();
        let unit = &lint.routines[0];
        assert_eq!(unit.bounds_claim(), Claim::Unknown);
        let pc = unit.base + 4; // the mld
        assert_eq!(
            check_events(&lint, "core", &[event(CODE_LOAD_FAULT, 0xFFC0, pc)]),
            None
        );
    }
}
