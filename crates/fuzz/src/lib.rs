//! Coverage-guided differential fuzzing for the Metal engines.
//!
//! `metal-fuzz` closes the loop the differential tests open by hand:
//! it *generates* Metal programs from a weighted grammar ([`grammar`]),
//! runs each on the cycle-accurate core (twice: decode cache on and
//! off) and the reference interpreter ([`exec`]), and diffs
//! architectural state, retirement order, Metal statistics, and cycle
//! counts. Novelty is judged by a compact coverage bitmap fed from
//! `metal-trace` events ([`coverage`]); interesting inputs are kept as
//! human-readable, replayable artifacts ([`artifact`]); diverging
//! inputs are minimized to small repros ([`shrink`]).
//!
//! Case reset uses the engine snapshot/restore path
//! ([`metal_pipeline::Engine::snapshot`]) so each case costs a memcpy,
//! not a machine rebuild.
//!
//! # Determinism
//!
//! Every case is identified by a seed derived from
//! `(campaign seed, shard, index)` with a SplitMix64-style mixer, so:
//!
//! * with `--cases N`, a campaign is **exactly** reproducible: same
//!   seed ⇒ same cases, same corpus file names and contents, same
//!   coverage count;
//! * with `--seconds T`, the case *schedule* per shard is a fixed
//!   sequence and the wall clock only decides the cut-off, so any
//!   artifact the run produces is reproducible from its file name
//!   alone (it encodes the case seed).

pub mod artifact;
pub mod coverage;
pub mod exec;
pub mod grammar;
pub mod lint;
pub mod shrink;

pub use coverage::CoverageMap;
pub use exec::{BugKind, CaseResult, CaseRunner};
pub use grammar::FuzzCase;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Campaign parameters (the `mfuzz` command line).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign seed; every case seed derives from it.
    pub seed: u64,
    /// Worker shards.
    pub jobs: usize,
    /// Wall-clock budget.
    pub seconds: Option<u64>,
    /// Exact case budget (split across shards; fully deterministic).
    pub cases: Option<u64>,
    /// Where to write corpus and divergence artifacts.
    pub corpus_dir: Option<PathBuf>,
    /// Injected engine bug (validation mode).
    pub bug: BugKind,
    /// Minimize divergences before reporting them.
    pub shrink: bool,
    /// Also lint every case and report lint-verdict vs simulator-fault
    /// disagreements (static-analysis soundness findings).
    pub lint: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 1,
            jobs: 1,
            seconds: None,
            cases: None,
            corpus_dir: None,
            bug: BugKind::None,
            shrink: true,
            lint: false,
        }
    }
}

/// A minimized divergence, ready to report.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Seed of the originating case.
    pub seed: u64,
    /// What the oracle saw.
    pub what: String,
    /// The (shrunk) case.
    pub case: FuzzCase,
    /// Instruction count of the shrunk case.
    pub insns: usize,
    /// Artifact path, when a corpus directory was given.
    pub artifact: Option<PathBuf>,
}

/// What a campaign did.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Cases executed (across all shards).
    pub cases: u64,
    /// Cases that hit a run budget without halting.
    pub hangs: u64,
    /// Cases rejected by the builder/assembler (generator bugs).
    pub rejects: u64,
    /// Bits set in the merged coverage map.
    pub coverage: usize,
    /// Corpus artifacts written this campaign.
    pub corpus: Vec<PathBuf>,
    /// Divergences found (shrunk when configured).
    pub divergences: Vec<Divergence>,
}

/// SplitMix64-style mix of (campaign seed, shard, index) into a case
/// seed. Stable across releases: artifact reproducibility depends on
/// it.
#[must_use]
pub fn case_seed(campaign: u64, shard: u64, index: u64) -> u64 {
    let mut z = campaign
        .wrapping_add(shard.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Divergences shrunk per shard before the rest are reported unshrunk.
const SHRINK_CAP: usize = 3;
/// Predicate evaluations allowed per shrink.
const SHRINK_BUDGET: usize = 2_000;

struct ShardOutcome {
    cases: u64,
    hangs: u64,
    rejects: u64,
    coverage: CoverageMap,
    corpus: Vec<PathBuf>,
    divergences: Vec<Divergence>,
}

fn run_shard(
    config: &CampaignConfig,
    shard: usize,
    budget: Option<u64>,
    deadline: Option<Instant>,
    stop: &AtomicBool,
) -> ShardOutcome {
    let mut runner = CaseRunner::new(config.bug);
    let mut out = ShardOutcome {
        cases: 0,
        hangs: 0,
        rejects: 0,
        coverage: CoverageMap::new(),
        corpus: Vec::new(),
        divergences: Vec::new(),
    };
    let mut index = 0u64;
    loop {
        if let Some(n) = budget {
            if index >= n {
                break;
            }
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let seed = case_seed(config.seed, shard as u64, index);
        index += 1;
        let case = grammar::generate(seed);
        let result = match runner.run(&case) {
            Ok(r) => r,
            Err(_) => {
                out.rejects += 1;
                continue;
            }
        };
        out.cases += 1;
        if result.hang {
            out.hangs += 1;
            continue;
        }
        if let Some(what) = result.divergence.clone() {
            let div = minimize(&mut runner, &case, &what, config, shard, &mut out);
            out.divergences.push(div);
            continue;
        }
        if config.lint {
            let finding = lint::check_case(&case, &result.core.events, &result.interp.events)
                .ok()
                .flatten();
            if let Some(what) = finding {
                let div = minimize_with(
                    &mut runner,
                    &case,
                    &what,
                    config,
                    shard,
                    &mut out,
                    "lint",
                    &|case, r| {
                        lint::check_case(case, &r.core.events, &r.interp.events)
                            .ok()
                            .flatten()
                    },
                );
                out.divergences.push(div);
                continue;
            }
        }
        let novel = out.coverage.observe_run(
            &result.core.events,
            result.core.tags,
            exec::halt_kind(&result.core.halt),
        );
        if novel {
            if let Some(dir) = &config.corpus_dir {
                let name = format!("c{shard:02}_{:06}_{seed:016x}.s", index - 1);
                let path = dir.join(name);
                let text = artifact::serialize(&case, &result.interp);
                if std::fs::write(&path, text).is_ok() {
                    out.corpus.push(path);
                }
            }
        }
    }
    out
}

/// Shrinks one engine divergence (up to the per-shard cap) and writes
/// its artifact.
fn minimize(
    runner: &mut CaseRunner,
    case: &FuzzCase,
    what: &str,
    config: &CampaignConfig,
    shard: usize,
    out: &mut ShardOutcome,
) -> Divergence {
    minimize_with(runner, case, what, config, shard, out, "div", &|_, r| {
        r.divergence.clone()
    })
}

/// Shrinks one finding under an arbitrary oracle and writes its
/// artifact as `{tag}_{shard}_{seed}.s`. The oracle maps a re-run case
/// to `Some(description)` while the finding persists; shrinking keeps
/// any candidate for which it still fires.
#[allow(clippy::too_many_arguments)]
fn minimize_with(
    runner: &mut CaseRunner,
    case: &FuzzCase,
    what: &str,
    config: &CampaignConfig,
    shard: usize,
    out: &mut ShardOutcome,
    tag: &str,
    oracle: &dyn Fn(&FuzzCase, &exec::CaseResult) -> Option<String>,
) -> Divergence {
    let shrunk = if config.shrink && out.divergences.len() < SHRINK_CAP {
        shrink::shrink(
            case,
            |cand| {
                runner
                    .run(cand)
                    .map(|r| !r.hang && oracle(cand, &r).is_some())
                    .unwrap_or(false)
            },
            SHRINK_BUDGET,
        )
    } else {
        case.clone()
    };
    // Re-run the final case: the artifact records the *reference*
    // expectations, so replay keeps failing while the bug lives.
    let (what, reference) = match runner.run(&shrunk) {
        Ok(r) => {
            let what = oracle(&shrunk, &r).unwrap_or_else(|| what.to_owned());
            (what, Some(r.interp))
        }
        Err(_) => (what.to_owned(), None),
    };
    let artifact = match (&config.corpus_dir, &reference) {
        (Some(dir), Some(reference)) => {
            let path = dir.join(format!("{tag}_{shard:02}_{:016x}.s", case.seed));
            let text = artifact::serialize(&shrunk, reference);
            std::fs::write(&path, text).ok().map(|()| path)
        }
        _ => None,
    };
    Divergence {
        seed: case.seed,
        what,
        insns: shrink::insn_count(&shrunk),
        case: shrunk,
        artifact,
    }
}

/// Runs a fuzzing campaign across `config.jobs` worker threads.
///
/// With a `cases` budget the split is exact (`n / jobs` each, the
/// remainder spread over the first shards) so results are bit-for-bit
/// reproducible. With only a `seconds` budget, shards run their fixed
/// per-shard schedule until the deadline.
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let jobs = config.jobs.max(1);
    if let Some(dir) = &config.corpus_dir {
        let _ = std::fs::create_dir_all(dir);
    }
    let deadline = config
        .seconds
        .map(|s| Instant::now() + Duration::from_secs(s));
    let budgets: Vec<Option<u64>> = (0..jobs)
        .map(|shard| {
            config.cases.map(|n| {
                let base = n / jobs as u64;
                let extra = u64::from((shard as u64) < n % jobs as u64);
                base + extra
            })
        })
        .collect();
    let stop = AtomicBool::new(false);
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let config = &*config;
                let stop = &stop;
                let budget = budgets[shard];
                scope.spawn(move || run_shard(config, shard, budget, deadline, stop))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut report = CampaignReport::default();
    let mut merged = CoverageMap::new();
    for out in outcomes {
        report.cases += out.cases;
        report.hangs += out.hangs;
        report.rejects += out.rejects;
        merged.merge(&out.coverage);
        report.corpus.extend(out.corpus);
        report.divergences.extend(out.divergences);
    }
    report.coverage = merged.count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_well_mixed() {
        // Adjacent (shard, index) pairs land far apart.
        let a = case_seed(1, 0, 0);
        let b = case_seed(1, 0, 1);
        let c = case_seed(1, 1, 0);
        let d = case_seed(2, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(
            (a ^ b).count_ones() > 8,
            "consecutive indices differ in many bits"
        );
    }

    #[test]
    fn small_campaign_is_deterministic() {
        let config = CampaignConfig {
            seed: 9,
            jobs: 2,
            cases: Some(40),
            ..CampaignConfig::default()
        };
        let a = run_campaign(&config);
        let b = run_campaign(&config);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.divergences.len(), b.divergences.len());
        assert!(a.cases + a.rejects == 40);
        assert_eq!(a.divergences.len(), 0, "clean engines must not diverge");
    }

    /// With `--lint` on and unmodified engines, a campaign reports no
    /// soundness findings: the analyzer never claims clean about a
    /// program that faults.
    #[test]
    fn lint_campaign_reports_no_findings() {
        let config = CampaignConfig {
            seed: 11,
            cases: Some(20),
            lint: true,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&config);
        assert_eq!(report.divergences.len(), 0, "{:?}", report.divergences);
    }
}
