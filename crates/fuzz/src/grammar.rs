//! The shared program grammar: seeded generation of Metal test cases.
//!
//! One generator feeds both the differential test suite
//! (`tests/metal_differential.rs`) and the `mfuzz` campaign loop, so any
//! construct the fuzzer learns to emit is automatically exercised by the
//! fixed-seed regression tests and vice versa.
//!
//! A generated [`FuzzCase`] is *structural* — mroutine sources,
//! delegation table, translation profile, and guest source — rather
//! than just a seed, so the shrinker can delete pieces of it and the
//! artifact writer can serialize it as ready-to-run assembly.
//!
//! Every case is built to terminate: loops are bounded with fixed trip
//! counts, `ecall` and misaligned accesses are only emitted when a
//! delegated handler exists to skip them, and all mroutines pass the
//! static verifier (no escaping branches, no privileged leaks).

use metal_pipeline::trap::TrapCause;
use metal_util::Rng;

/// One mroutine of a generated case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineSpec {
    /// Entry-table index.
    pub entry: u8,
    /// Diagnostic name.
    pub name: String,
    /// Assembly source.
    pub src: String,
}

impl RoutineSpec {
    pub(crate) fn new(entry: u8, name: &str, src: impl Into<String>) -> RoutineSpec {
        RoutineSpec {
            entry,
            name: name.to_owned(),
            src: src.into(),
        }
    }
}

/// A complete generated test case: everything needed to build a
/// Metal-enabled machine and run one guest program on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// The seed this case was generated from (0 for hand-built cases).
    pub seed: u64,
    /// Installed mroutines.
    pub routines: Vec<RoutineSpec>,
    /// Exception delegations `(cause, entry)` programmed at boot.
    pub delegations: Vec<(TrapCause, u8)>,
    /// Start the guest under software-managed translation (with a
    /// TLB-refill mroutine delegated to the page faults).
    pub soft_tlb: bool,
    /// Guest program source, assembled at address 0.
    pub guest: String,
}

/// Entry used by the trap-skip handler.
pub const SKIP_ENTRY: u8 = 2;
/// Entry used by the soft-TLB refill handler.
pub const REFILL_ENTRY: u8 = 3;
/// Entry that arms `fence` interception.
pub const INTERCEPT_ARM_ENTRY: u8 = 4;
/// Entry handling intercepted `fence` instructions.
pub const INTERCEPT_HANDLER_ENTRY: u8 = 5;
/// Entry used by the generated system (march.*) routine.
pub const SYS_ENTRY: u8 = 6;

/// Guest scratch memory base (loads/stores land in `base..base+64`).
pub const SCRATCH_BASE: u32 = 0x3000;

/// Delegated-trap handler that skips the faulting instruction
/// (`m31 + 4`) — the pattern for `ecall` and misaligned accesses.
const SKIP_HANDLER: &str = "rmr t0, m31\naddi t0, t0, 4\nwmr m31, t0\nmexit";

/// Soft-TLB refill handler: identity-map the faulting page with full
/// permissions and retry the faulting instruction (no skip).
const REFILL_HANDLER: &str =
    "rmr t0, mbadaddr\nsrli t0, t0, 12\nslli t0, t0, 12\nori t1, t0, 15\nmtlbw t0, t1\nmexit";

/// Arms interception of the `fence` opcode (0x0F) to
/// [`INTERCEPT_HANDLER_ENTRY`] and enables intercepts in `mstatus`.
const INTERCEPT_ARM: &str =
    "li t0, 0x0F\nli t1, 11\nmintercept t0, t1\nli t0, 1\nwmr mstatus, t0\nmexit";

/// Intercepted-`fence` handler: bump a counter in MRAM private data,
/// then skip past the intercepted instruction.
const INTERCEPT_HANDLER: &str = "mld t0, 32(zero)\naddi t0, t0, 1\nmst t0, 32(zero)\nrmr t0, m31\naddi t0, t0, 4\nwmr m31, t0\nmexit";

/// A tiny verified mroutine: a few arithmetic ops over a0/a1 and the
/// Metal registers, ending in mexit.
pub fn rand_routine(rng: &mut Rng) -> String {
    let steps = rng.range_usize(1, 8);
    let mut src = String::new();
    for _ in 0..steps {
        let step = match rng.range_u32(0, 7) {
            0 => format!("wmr m{}, a0", rng.range_u32(0, 8)),
            1 => format!("rmr t0, m{}\n add a0, a0, t0", rng.range_u32(0, 8)),
            2 => format!("addi a0, a0, {}", rng.range_i32(-64, 64)),
            3 => "slli a0, a0, 1".to_owned(),
            4 => "xor a0, a0, a1".to_owned(),
            5 => format!("mst a0, {}(zero)", rng.range_u32(0, 16) * 4),
            _ => format!(
                "mld t0, {}(zero)\n add a0, a0, t0",
                rng.range_u32(0, 16) * 4
            ),
        };
        src.push_str(&step);
        src.push('\n');
    }
    src.push_str("mexit");
    src
}

/// A guest program: seeded registers, interleaved arithmetic and
/// menter calls to the two routines, ebreak.
pub fn rand_guest(rng: &mut Rng) -> String {
    let a0 = rng.range_i32(-1000, 1000);
    let a1 = rng.range_i32(-1000, 1000);
    let steps = rng.range_usize(1, 20);
    let mut body = String::new();
    for _ in 0..steps {
        // Weights: 3 addi, 2 menter 0, 2 menter 1, 1 add, 1 mul.
        let step = match rng.range_u32(0, 9) {
            0..=2 => format!("addi a0, a0, {}", rng.range_i32(-512, 512)),
            3..=4 => "menter 0".to_owned(),
            5..=6 => "menter 1".to_owned(),
            7 => "add a1, a1, a0".to_owned(),
            _ => "mul a0, a0, a1".to_owned(),
        };
        body.push_str(&step);
        body.push('\n');
    }
    format!("li a0, {a0}\nli a1, {a1}\n{body}ebreak")
}

/// A self-modifying guest: a loop whose head instruction (`slot`) is
/// overwritten mid-flight with a different `addi` immediate, so later
/// passes execute the patched instruction. The store lands on a line
/// that has already been fetched and decoded — exactly the case the
/// decode cache's generation counter must catch.
///
/// Oracle: pass 1 executes `addi a0, a0, imm1`; the remaining
/// `passes-1` iterations execute the patched `addi a0, a0, imm2`. An
/// engine serving stale decoded state gets a different a0 even when
/// both engines are equally stale, so this is checked against the
/// closed form, not just cross-engine.
pub fn smc_guest(rng: &mut Rng) -> (String, u32) {
    let passes = rng.range_u32(2, 5) as i32;
    let imm1 = rng.range_i32(-100, 100);
    let imm2 = rng.range_i32(-100, 100);
    let patched =
        metal_asm::assemble_at(&format!("addi a0, a0, {imm2}"), 0).expect("patch assembles")[0];
    let src = format!(
        r"
        li a0, 0
        li s1, {passes}
    loop:
    slot:
        addi a0, a0, {imm1}
        la t0, slot
        li t1, {patched}
        sw t1, 0(t0)
        addi s1, s1, -1
        bnez s1, loop
        ebreak
        "
    );
    let expected = (imm1 as u32).wrapping_add((imm2 as u32).wrapping_mul((passes - 1) as u32));
    (src, expected)
}

/// A verified mroutine exercising the `march.*` system surface:
/// physical memory accesses, TLB probes, and page-key programming
/// (key 1, which no generated page uses, so the write is observable in
/// Metal state but never faults the guest).
fn rand_sys_routine(rng: &mut Rng) -> String {
    let steps = rng.range_usize(1, 5);
    let mut src = String::new();
    for _ in 0..steps {
        let step = match rng.range_u32(0, 5) {
            0 => format!(
                "li t0, {}\nmpld t1, t0\nadd a0, a0, t1",
                SCRATCH_BASE + rng.range_u32(0, 16) * 4
            ),
            1 => format!(
                "li t0, {}\nmpst a0, t0",
                SCRATCH_BASE + rng.range_u32(0, 16) * 4
            ),
            2 => format!("li t0, {}\nmtlbp t1, t0\nadd a0, a0, t1", SCRATCH_BASE),
            3 => format!("li t0, 1\nli t1, {}\nmpkey t0, t1", rng.range_u32(0, 4)),
            _ => format!("addi a0, a0, {}", rng.range_i32(-32, 32)),
        };
        src.push_str(&step);
        src.push('\n');
    }
    src.push_str("mexit");
    src
}

/// Page-fault causes routed to the refill handler under soft-TLB cases.
const PAGE_FAULTS: [TrapCause; 3] = [
    TrapCause::InsnPageFault,
    TrapCause::LoadPageFault,
    TrapCause::StorePageFault,
];

/// Skippable causes routed to the skip handler under trap cases.
const SKIP_FAULTS: [TrapCause; 3] = [
    TrapCause::Ecall,
    TrapCause::LoadMisaligned,
    TrapCause::StoreMisaligned,
];

/// Generates a complete case from a seed. Deterministic: the same seed
/// always yields the same case, on every shard of every campaign.
#[must_use]
pub fn generate(seed: u64) -> FuzzCase {
    let mut rng = Rng::new(seed);
    let mut routines = vec![
        RoutineSpec::new(0, "r0", rand_routine(&mut rng)),
        RoutineSpec::new(1, "r1", rand_routine(&mut rng)),
    ];
    let mut delegations: Vec<(TrapCause, u8)> = Vec::new();

    // Translation profile first: it composes with every guest shape.
    let soft_tlb = rng.below(8) == 0;
    if soft_tlb {
        routines.push(RoutineSpec::new(REFILL_ENTRY, "refill", REFILL_HANDLER));
        for cause in PAGE_FAULTS {
            delegations.push((cause, REFILL_ENTRY));
        }
    }

    // Self-modifying guests reuse the differential suite's generator
    // wholesale (its closed-form oracle lives in the test, not here).
    if rng.below(6) == 0 {
        let (guest, _) = smc_guest(&mut rng);
        return FuzzCase {
            seed,
            routines,
            delegations,
            soft_tlb,
            guest,
        };
    }

    let traps = rng.below(4) == 0;
    if traps {
        routines.push(RoutineSpec::new(SKIP_ENTRY, "skip", SKIP_HANDLER));
        for cause in SKIP_FAULTS {
            delegations.push((cause, SKIP_ENTRY));
        }
    }
    let intercept = rng.below(8) == 0;
    if intercept {
        routines.push(RoutineSpec::new(INTERCEPT_ARM_ENTRY, "arm", INTERCEPT_ARM));
        routines.push(RoutineSpec::new(
            INTERCEPT_HANDLER_ENTRY,
            "on_fence",
            INTERCEPT_HANDLER,
        ));
    }
    let mut menter_entries: Vec<u8> = vec![0, 1];
    if rng.below(4) == 0 {
        routines.push(RoutineSpec::new(
            SYS_ENTRY,
            "sys",
            rand_sys_routine(&mut rng),
        ));
        menter_entries.push(SYS_ENTRY);
    }

    let guest = compose_guest(&mut rng, &menter_entries, traps, intercept);
    FuzzCase {
        seed,
        routines,
        delegations,
        soft_tlb,
        guest,
    }
}

/// The composed guest: register seeding, scratch-memory traffic,
/// mroutine calls, mul/div, CSR traffic, an optional bounded loop, and
/// (when handlers exist) deliberate traps and intercepted fences.
fn compose_guest(rng: &mut Rng, menter_entries: &[u8], traps: bool, intercept: bool) -> String {
    let a0 = rng.range_i32(-1000, 1000);
    let a1 = rng.range_i32(-1000, 1000);
    let mut body = format!("li a0, {a0}\nli a1, {a1}\nli s0, {SCRATCH_BASE}\n");
    if intercept {
        body.push_str(&format!("menter {INTERCEPT_ARM_ENTRY}\n"));
    }
    let steps = rng.range_usize(4, 24);
    let mut loop_emitted = false;
    for _ in 0..steps {
        let step = match rng.below(16) {
            0..=3 => format!("addi a0, a0, {}", rng.range_i32(-512, 512)),
            4 => "add a1, a1, a0".to_owned(),
            5 => format!(
                "{} a0, a0, a1",
                rng.pick(&["mul", "mulh", "mulhu", "div", "rem", "remu"])
            ),
            6..=7 => format!("menter {}", rng.pick(menter_entries)),
            8 => format!("sw a0, {}(s0)", rng.range_u32(0, 16) * 4),
            9 => format!("lw t2, {}(s0)\nadd a0, a0, t2", rng.range_u32(0, 16) * 4),
            10 => format!("sb a0, {}(s0)", rng.range_u32(0, 64)),
            11 => format!("lbu t2, {}(s0)\nxor a0, a0, t2", rng.range_u32(0, 64)),
            12 => {
                if rng.chance() {
                    "csrw mscratch, a0".to_owned()
                } else {
                    "csrr t2, mscratch\nadd a0, a0, t2".to_owned()
                }
            }
            13 => {
                if traps && rng.chance() {
                    "ecall".to_owned()
                } else {
                    "xor a0, a0, a1".to_owned()
                }
            }
            14 => {
                if traps {
                    // Misaligned: delegated to the skip handler, so the
                    // load never completes and t2 is untouched.
                    "lw t2, 1(s0)".to_owned()
                } else {
                    "slli a0, a0, 1".to_owned()
                }
            }
            _ => {
                if intercept {
                    "fence".to_owned()
                } else if !loop_emitted {
                    loop_emitted = true;
                    format!(
                        "li t3, {}\nfuzzloop:\naddi a0, a0, {}\naddi t3, t3, -1\nbnez t3, fuzzloop",
                        rng.range_u32(2, 7),
                        rng.range_i32(-16, 16)
                    )
                } else {
                    "srli a0, a0, 3".to_owned()
                }
            }
        };
        body.push_str(&step);
        body.push('\n');
    }
    body.push_str("ebreak");
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [1u64, 0xDEAD, u64::MAX] {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn generated_cases_assemble_and_verify() {
        // Every generated case must build a machine and assemble its
        // guest: the campaign loop treats generator-side failures as
        // bugs, not as boring rejects.
        for seed in 0..200u64 {
            let case = generate(seed);
            let mut b = metal_core::MetalBuilder::new();
            for r in &case.routines {
                b = b.routine(r.entry, &r.name, &r.src);
            }
            for &(cause, entry) in &case.delegations {
                b = b.delegate_exception(cause, entry);
            }
            b.build()
                .unwrap_or_else(|e| panic!("seed {seed}: build failed: {e:?}"));
            metal_asm::assemble_at(&case.guest, 0)
                .unwrap_or_else(|e| panic!("seed {seed}: guest assembly failed: {e}"));
        }
    }

    #[test]
    fn profiles_all_reachable() {
        let (mut tlb, mut traps, mut icpt, mut sys, mut smc) = (false, false, false, false, false);
        for seed in 0..500u64 {
            let case = generate(seed);
            tlb |= case.soft_tlb;
            smc |= case.guest.contains("slot:");
            for r in &case.routines {
                traps |= r.entry == SKIP_ENTRY;
                icpt |= r.entry == INTERCEPT_ARM_ENTRY;
                sys |= r.entry == SYS_ENTRY;
            }
        }
        assert!(
            tlb && traps && icpt && sys && smc,
            "profile coverage: tlb={tlb} traps={traps} intercept={icpt} sys={sys} smc={smc}"
        );
    }
}
