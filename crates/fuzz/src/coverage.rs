//! The coverage bitmap: compact feedback derived from trace events.
//!
//! Coverage features are hashed into a fixed bitmap (16 Ki bits, 2 KiB)
//! in the classic coverage-guided style: a case is *interesting* — and
//! enters the corpus — when it sets at least one bit no earlier case of
//! the campaign set. Features come from the `metal-trace` events the
//! instrumented engines already emit, so the fuzzer observes the
//! machine exactly as the observability layer does:
//!
//! * trap causes taken (baseline and delegated, per cause code);
//! * Metal transition points (`menter`/`mexit` per entry and cause) and
//!   *transition edges* (consecutive transition pairs);
//! * stall kinds, flushes, interrupt injections;
//! * cache and TLB hit/miss *edges* (previous outcome → current);
//! * `march.*` sub-operations executed (from `CustomExec` words);
//! * dispatch tags retired and the halt shape.

use metal_trace::{Event, EventKind};

/// Number of bits in the map.
const MAP_BITS: usize = 1 << 14;

/// A fixed-size coverage bitmap.
#[derive(Clone, Debug)]
pub struct CoverageMap {
    bits: Vec<u64>,
}

impl Default for CoverageMap {
    fn default() -> CoverageMap {
        CoverageMap::new()
    }
}

/// FNV-1a over a list of words — stable, dependency-free feature hash.
fn hash(words: &[u64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap {
            bits: vec![0; MAP_BITS / 64],
        }
    }

    /// Sets the bit for a feature; true if it was previously clear.
    pub fn observe(&mut self, feature: u64) -> bool {
        let bit = (feature as usize) & (MAP_BITS - 1);
        let (word, mask) = (bit / 64, 1u64 << (bit % 64));
        let new = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        new
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// ORs another map in; true if any new bit appeared.
    pub fn merge(&mut self, other: &CoverageMap) -> bool {
        let mut new = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            new |= *a | *b != *a;
            *a |= *b;
        }
        new
    }

    /// Feeds one run's trace events (plus the retired-tag bitmask and a
    /// halt discriminant) into the map; true if anything new appeared.
    pub fn observe_run(&mut self, events: &[Event], tags: u32, halt_kind: u32) -> bool {
        let mut new = false;
        // Edge state: previous transition-ish feature, previous cache
        // and TLB outcomes.
        let mut prev_transition: u64 = 0;
        let mut prev_cache: [u64; 2] = [0, 0];
        let mut prev_tlb: u64 = 0;
        for ev in events {
            match ev.kind {
                EventKind::Trap { code, .. } => {
                    let f = hash(&[1, u64::from(code)]);
                    new |= self.observe(f);
                    new |= self.observe(hash(&[100, prev_transition, f]));
                    prev_transition = f;
                }
                EventKind::TrapDelegated { entry, layer, code } => {
                    let f = hash(&[2, u64::from(entry), u64::from(layer), u64::from(code)]);
                    new |= self.observe(f);
                    new |= self.observe(hash(&[100, prev_transition, f]));
                    prev_transition = f;
                }
                EventKind::MEnter { entry, cause, .. } => {
                    let f = hash(&[3, u64::from(entry), cause as u64]);
                    new |= self.observe(f);
                    new |= self.observe(hash(&[100, prev_transition, f]));
                    prev_transition = f;
                }
                EventKind::MExit { entry, .. } => {
                    let f = hash(&[4, u64::from(entry)]);
                    new |= self.observe(f);
                    new |= self.observe(hash(&[100, prev_transition, f]));
                    prev_transition = f;
                }
                EventKind::Stall { kind, .. } => {
                    new |= self.observe(hash(&[5, kind as u64]));
                }
                EventKind::InterruptInjected { line } => {
                    new |= self.observe(hash(&[6, u64::from(line)]));
                }
                EventKind::CacheAccess { which, hit, .. } => {
                    let w = which as usize & 1;
                    let cur = u64::from(hit);
                    new |= self.observe(hash(&[7, w as u64, prev_cache[w], cur]));
                    prev_cache[w] = cur;
                }
                EventKind::TlbLookup { outcome, .. } => {
                    let cur = outcome as u64;
                    new |= self.observe(hash(&[8, prev_tlb, cur]));
                    prev_tlb = cur;
                }
                EventKind::HwRefill { .. } => {
                    new |= self.observe(hash(&[9]));
                }
                EventKind::CustomExec { word, .. } => {
                    // Classify by opcode + funct fields, not the full
                    // word: which march op ran, not which registers.
                    let class = u64::from(word & 0xFE00_707F);
                    new |= self.observe(hash(&[10, class]));
                }
                EventKind::MramData { write, .. } => {
                    new |= self.observe(hash(&[11, u64::from(write)]));
                }
                EventKind::DecodeReplace { .. } => {
                    new |= self.observe(hash(&[12]));
                }
                _ => {}
            }
        }
        for tag in 0..6u32 {
            if tags & (1 << tag) != 0 {
                new |= self.observe(hash(&[13, u64::from(tag)]));
            }
        }
        new |= self.observe(hash(&[14, u64::from(halt_kind)]));
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_trace::{CacheKind, TransitionCause};

    fn ev(kind: EventKind) -> Event {
        Event { cycle: 0, kind }
    }

    #[test]
    fn observe_sets_and_reports_new() {
        let mut map = CoverageMap::new();
        assert!(map.observe(42));
        assert!(!map.observe(42));
        assert_eq!(map.count(), 1);
        // Aliasing: features reduce mod the map size.
        assert!(!map.observe(42 + MAP_BITS as u64));
    }

    #[test]
    fn merge_reports_novelty() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        a.observe(1);
        b.observe(1);
        assert!(!a.merge(&b), "no new bits");
        b.observe(2);
        assert!(a.merge(&b));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn runs_with_different_behavior_hit_different_bits() {
        let mut map = CoverageMap::new();
        let quiet = [ev(EventKind::CacheAccess {
            which: CacheKind::ICache,
            addr: 0,
            hit: true,
        })];
        assert!(map.observe_run(&quiet, 0b1, 0));
        assert!(
            !map.observe_run(&quiet, 0b1, 0),
            "identical behavior is not novel"
        );
        let transition = [
            ev(EventKind::MEnter {
                entry: 3,
                cause: TransitionCause::Call,
                pc: 0,
            }),
            ev(EventKind::MExit {
                entry: 3,
                target: 8,
            }),
        ];
        assert!(map.observe_run(&transition, 0b1, 0));
    }

    #[test]
    fn transition_edges_are_order_sensitive() {
        let enter = ev(EventKind::MEnter {
            entry: 0,
            cause: TransitionCause::Call,
            pc: 0,
        });
        let exit = ev(EventKind::MExit {
            entry: 0,
            target: 4,
        });
        let mut ab = CoverageMap::new();
        ab.observe_run(&[enter, exit], 0, 0);
        let mut ba = CoverageMap::new();
        ba.observe_run(&[exit, enter], 0, 0);
        // Same events, different order: the edge features differ, so
        // each map holds bits the other lacks.
        let mut merged = ab.clone();
        assert!(merged.merge(&ba), "reversed order contributed new bits");
    }
}
