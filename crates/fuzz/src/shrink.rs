//! Greedy test-case minimization.
//!
//! Given a diverging case and a predicate that re-checks the
//! divergence, [`shrink`] repeatedly tries structural deletions —
//! drop a delegation, drop a whole routine, drop a guest line, drop a
//! routine body line — keeping any candidate for which the predicate
//! still fires, until a full pass removes nothing (a fixpoint) or the
//! attempt budget runs out. Candidates that no longer build or
//! assemble simply don't reproduce and are rejected by the predicate's
//! caller, so the shrinker needs no assembler knowledge beyond "keep
//! the trailing `mexit`".

use crate::grammar::FuzzCase;

/// Total instructions across the guest and all routines; the artifact
/// size metric reported after shrinking.
#[must_use]
pub fn insn_count(case: &FuzzCase) -> usize {
    let count = |src: &str| {
        metal_asm::assemble_at(src, 0)
            .map(|words| words.len())
            .unwrap_or(usize::MAX / 64)
    };
    count(&case.guest) + case.routines.iter().map(|r| count(&r.src)).sum::<usize>()
}

fn without_line(src: &str, idx: usize) -> String {
    src.lines()
        .enumerate()
        .filter(|&(i, _)| i != idx)
        .map(|(_, l)| l)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Minimizes `case` under `still_fails`, spending at most `budget`
/// predicate evaluations. The input case must already satisfy the
/// predicate; the result always does.
pub fn shrink<F>(case: &FuzzCase, mut still_fails: F, budget: usize) -> FuzzCase
where
    F: FnMut(&FuzzCase) -> bool,
{
    let mut best = case.clone();
    let mut spent = 0usize;
    let mut try_candidate = |best: &mut FuzzCase, cand: FuzzCase, spent: &mut usize| {
        if *spent >= budget {
            return false;
        }
        *spent += 1;
        if still_fails(&cand) {
            *best = cand;
            true
        } else {
            false
        }
    };
    loop {
        let mut progressed = false;

        // Drop whole delegations.
        let mut i = 0;
        while i < best.delegations.len() {
            let mut cand = best.clone();
            cand.delegations.remove(i);
            if try_candidate(&mut best, cand, &mut spent) {
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Drop whole routines (and any delegation pointing at them).
        let mut i = 0;
        while i < best.routines.len() {
            let entry = best.routines[i].entry;
            let mut cand = best.clone();
            cand.routines.remove(i);
            cand.delegations.retain(|&(_, e)| e != entry);
            if try_candidate(&mut best, cand, &mut spent) {
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Drop guest lines, longest-suffix first so dead tails go fast.
        let mut i = best.guest.lines().count();
        while i > 0 {
            i -= 1;
            let mut cand = best.clone();
            cand.guest = without_line(&best.guest, i);
            if try_candidate(&mut best, cand, &mut spent) {
                progressed = true;
            }
        }

        // Drop routine body lines, preserving a trailing `mexit` so the
        // routine still verifies.
        for r in 0..best.routines.len() {
            let lines = best.routines[r].src.lines().count();
            let mut i = lines;
            while i > 0 {
                i -= 1;
                let line = best.routines[r]
                    .src
                    .lines()
                    .nth(i)
                    .unwrap_or("")
                    .trim()
                    .to_owned();
                if line == "mexit" && i + 1 == best.routines[r].src.lines().count() {
                    continue;
                }
                let mut cand = best.clone();
                cand.routines[r].src = without_line(&best.routines[r].src, i);
                if try_candidate(&mut best, cand, &mut spent) {
                    progressed = true;
                }
            }
        }

        if !progressed || spent >= budget {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::RoutineSpec;

    fn case_with(guest: &str) -> FuzzCase {
        FuzzCase {
            seed: 0,
            routines: vec![RoutineSpec::new(
                2,
                "noise",
                "addi t0, t0, 1\naddi t0, t0, 2\nmexit",
            )],
            delegations: vec![],
            soft_tlb: false,
            guest: guest.to_owned(),
        }
    }

    #[test]
    fn shrinks_to_the_failing_line() {
        // Pretend the divergence is "the guest contains `mul`".
        let case =
            case_with("li a0, 1\nli a1, 2\nadd a0, a0, a1\nmul a0, a0, a1\nxor a1, a1, a0\nebreak");
        let small = shrink(&case, |c| c.guest.contains("mul"), 10_000);
        assert!(small.guest.contains("mul"));
        assert!(
            small.guest.lines().count() <= 1,
            "only the load-bearing line remains: {:?}",
            small.guest
        );
        assert!(small.routines.is_empty(), "noise routine removed");
    }

    #[test]
    fn respects_budget() {
        let case = case_with("li a0, 1\nli a1, 2\nebreak");
        let mut calls = 0;
        let out = shrink(
            &case,
            |_| {
                calls += 1;
                true
            },
            3,
        );
        assert!(calls <= 3);
        // Still a valid (possibly partial) shrink of the original.
        assert!(out.guest.lines().count() <= case.guest.lines().count());
    }

    #[test]
    fn keeps_trailing_mexit() {
        let case = case_with("ebreak");
        let small = shrink(&case, |c| !c.routines.is_empty(), 10_000);
        let src = &small.routines[0].src;
        assert!(src.trim_end().ends_with("mexit"), "{src:?}");
    }
}
