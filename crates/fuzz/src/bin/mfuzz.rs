//! `mfuzz` — coverage-guided differential fuzzing of the Metal engines.
//!
//! ```text
//! mfuzz [--seed N] [--jobs N] [--seconds N | --cases N] [--corpus DIR]
//!       [--replay FILE]... [--inject-bug mul] [--no-shrink] [--lint]
//! ```
//!
//! Generates Metal programs from a weighted grammar and runs each on
//! the pipelined core (decode cache on and off) and the reference
//! interpreter, diffing architectural state, retirement order, Metal
//! statistics, and cycle counts. Interesting cases (new coverage bits)
//! are written to `--corpus DIR`; any divergence is shrunk to a small
//! repro and written alongside as `div_*.s`.
//!
//! With `--cases N` a campaign is exactly reproducible from its seed.
//! With `--replay FILE` no fuzzing happens: the artifact is re-run and
//! its recorded expectations checked — the exit code says whether the
//! divergence it witnesses still exists.
//!
//! `--inject-bug mul` plants a known bug (low result bit of `mul`
//! flipped on the cores only) to validate the whole find→shrink→replay
//! loop end to end.
//!
//! `--lint` additionally runs the `metal-lint` static analyzer over
//! every case and reports *soundness* disagreements — a unit that
//! lints clean for privilege or MRAM bounds but faults at runtime —
//! as first-class findings, shrunk and serialized like divergences
//! (`lint_*.s`). With `--replay`, artifacts are re-checked for lint
//! disagreements too.

use metal_fuzz::{artifact, exec::BugKind, run_campaign, CampaignConfig};
use metal_util::cli::{parse_num, usage};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "mfuzz [--seed N] [--jobs N] [--seconds N | --cases N] [--corpus DIR] [--replay FILE]... [--inject-bug mul] [--no-shrink] [--lint]";

fn main() -> ExitCode {
    let mut config = CampaignConfig::default();
    let mut replays: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => config.seed = v,
                None => return usage("mfuzz", USAGE, "bad --seed"),
            },
            "--jobs" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) if v >= 1 => config.jobs = v as usize,
                _ => return usage("mfuzz", USAGE, "bad --jobs"),
            },
            "--seconds" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => config.seconds = Some(v),
                None => return usage("mfuzz", USAGE, "bad --seconds"),
            },
            "--cases" => match args.next().and_then(|v| parse_num(&v)) {
                Some(v) => config.cases = Some(v),
                None => return usage("mfuzz", USAGE, "bad --cases"),
            },
            "--corpus" => match args.next() {
                Some(dir) => config.corpus_dir = Some(PathBuf::from(dir)),
                None => return usage("mfuzz", USAGE, "missing argument to --corpus"),
            },
            "--replay" => match args.next() {
                Some(path) => replays.push(path),
                None => return usage("mfuzz", USAGE, "missing argument to --replay"),
            },
            "--inject-bug" => match args.next().as_deref().and_then(BugKind::parse) {
                Some(bug) => config.bug = bug,
                None => return usage("mfuzz", USAGE, "bad --inject-bug (try: mul)"),
            },
            "--no-shrink" => config.shrink = false,
            "--lint" => config.lint = true,
            "-h" | "--help" => return usage("mfuzz", USAGE, ""),
            other => return usage("mfuzz", USAGE, &format!("unknown argument {other:?}")),
        }
    }

    if !replays.is_empty() {
        return replay_all(&replays, config.bug, config.lint);
    }

    if config.seconds.is_none() && config.cases.is_none() {
        config.seconds = Some(5);
    }
    let report = run_campaign(&config);
    println!(
        "mfuzz: {} cases ({} hangs, {} rejects), {} coverage bits, {} corpus artifacts, {} divergences",
        report.cases,
        report.hangs,
        report.rejects,
        report.coverage,
        report.corpus.len(),
        report.divergences.len()
    );
    for div in &report.divergences {
        let via = div
            .artifact
            .as_deref()
            .map(|p| format!(" -> {}", p.display()))
            .unwrap_or_default();
        println!(
            "  divergence (seed {:#018x}, {} insns): {}{via}",
            div.seed, div.insns, div.what
        );
    }
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay_all(paths: &[String], bug: BugKind, lint: bool) -> ExitCode {
    let mut failed = false;
    for path in paths {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("mfuzz: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        match artifact::replay(&content, bug) {
            Ok(()) => println!("replay {path}: ok"),
            Err(e) => {
                println!("replay {path}: FAILED: {e}");
                failed = true;
            }
        }
        if lint {
            match lint_replay(&content, bug) {
                Ok(None) => println!("lint {path}: sound"),
                Ok(Some(what)) => {
                    println!("lint {path}: FAILED: {what}");
                    failed = true;
                }
                Err(e) => {
                    println!("lint {path}: FAILED: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Re-runs an artifact's case and checks it for lint-vs-simulator
/// soundness disagreements.
fn lint_replay(content: &str, bug: BugKind) -> Result<Option<String>, String> {
    let (case, _expect) = artifact::parse(content)?;
    let mut runner = metal_fuzz::CaseRunner::new(bug);
    let result = runner.run(&case).map_err(|e| e.0)?;
    metal_fuzz::lint::check_case(&case, &result.core.events, &result.interp.events)
}
