//! End-to-end campaign tests: determinism of the seed schedule and the
//! full find→shrink→replay loop against a deliberately injected engine
//! bug.

use metal_fuzz::exec::BugKind;
use metal_fuzz::{artifact, run_campaign, shrink, CampaignConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mfuzz-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn same_seed_same_campaign() {
    // Acceptance: `mfuzz --cases N --jobs 4 --seed 1` is deterministic —
    // same corpus (names and contents) and same coverage count.
    let run = |dir: &std::path::Path| {
        run_campaign(&CampaignConfig {
            seed: 1,
            jobs: 4,
            cases: Some(160),
            corpus_dir: Some(dir.to_path_buf()),
            ..CampaignConfig::default()
        })
    };
    let dir_a = temp_dir("det-a");
    let dir_b = temp_dir("det-b");
    let a = run(&dir_a);
    let b = run(&dir_b);
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.coverage, b.coverage);
    assert!(a.coverage > 0, "campaign observed no coverage");
    assert!(!a.corpus.is_empty(), "campaign kept no seeds");
    assert_eq!(a.divergences.len(), 0, "clean engines diverged");
    let names = |dir: &std::path::Path| {
        let mut v: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        v.sort();
        v
    };
    let (na, nb) = (names(&dir_a), names(&dir_b));
    assert_eq!(na, nb, "corpus file sets differ");
    for name in &na {
        let ca = std::fs::read_to_string(dir_a.join(name)).unwrap();
        let cb = std::fs::read_to_string(dir_b.join(name)).unwrap();
        assert_eq!(ca, cb, "artifact {name} differs between runs");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn injected_bug_is_found_shrunk_and_replayable() {
    // Acceptance: a seeded engine bug (mul low-bit flip on the cores)
    // is found, shrunk to <= 12 instructions, and the written artifact
    // fails replay while the bug exists and passes once it is gone.
    let dir = temp_dir("bug");
    let report = run_campaign(&CampaignConfig {
        seed: 7,
        jobs: 2,
        cases: Some(400),
        corpus_dir: Some(dir.clone()),
        bug: BugKind::MulLowBit,
        ..CampaignConfig::default()
    });
    assert!(
        !report.divergences.is_empty(),
        "injected bug not found in {} cases",
        report.cases
    );
    let best = report.divergences.iter().min_by_key(|d| d.insns).unwrap();
    assert!(
        best.insns <= 12,
        "best shrink is {} instructions",
        best.insns
    );
    assert!(
        best.case.guest.contains("mul"),
        "shrunk case lost the buggy instruction:\n{}",
        best.case.guest
    );
    let path = best.artifact.as_ref().expect("artifact written");
    let content = std::fs::read_to_string(path).unwrap();
    // While the bug exists, the artifact reproduces it.
    let err = artifact::replay(&content, BugKind::MulLowBit)
        .expect_err("artifact must fail replay under the bug");
    assert!(
        err.contains("diverged") || err.contains("expected"),
        "{err}"
    );
    // Once the bug is fixed, the same artifact passes.
    artifact::replay(&content, BugKind::None).expect("artifact passes on fixed engines");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shrunk_case_is_still_counted_by_insn_count() {
    let case = metal_fuzz::grammar::generate(1);
    let n = shrink::insn_count(&case);
    assert!(n > 0, "generated cases have instructions");
}
