//! `mfault` — deterministic fault-injection campaigns.
//!
//! ```text
//! mfault --seed 7 --cases 500 --ecc secded --sites mram-code,mreg
//! ```
//!
//! Reproducibility contract: the same `--seed`/`--cases`/configuration
//! produces byte-identical classification JSON, for any `--jobs`.

use metal_core::EccMode;
use metal_faultsim::campaign::{
    run, CampaignConfig, Classification, EngineChoice, KindChoice, WorkloadKind,
};
use metal_trace::FaultSite;
use metal_util::cli::{fail, parse_num, usage};
use std::process::ExitCode;

const USAGE: &str = "mfault [--seed N] [--cases N] [--jobs N] [--ecc none|parity|secded] \
[--sites LIST] [--kind transient|stuck|mixed] [--engine pipeline|interp] \
[--workload loop|fuzz] [--no-recover] [--zero-fault] [--json FILE] \
[--max-sdc N] [--min-corrected-pct P]";

fn parse_sites(list: &str) -> Option<Vec<FaultSite>> {
    let mut sites = Vec::new();
    for name in list.split(',') {
        let site = FaultSite::parse(name.trim())?;
        if !sites.contains(&site) {
            sites.push(site);
        }
    }
    if sites.is_empty() {
        None
    } else {
        Some(sites)
    }
}

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut max_sdc: Option<u64> = None;
    let mut min_corrected_pct: Option<f64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match arg {
            "-h" | "--help" => return usage("mfault", USAGE, ""),
            "--no-recover" => cfg.recover = false,
            "--zero-fault" => cfg.zero_fault = true,
            "--seed"
            | "--cases"
            | "--jobs"
            | "--ecc"
            | "--sites"
            | "--kind"
            | "--engine"
            | "--workload"
            | "--json"
            | "--max-sdc"
            | "--min-corrected-pct" => {
                let Some(v) = value(&mut i) else {
                    return usage("mfault", USAGE, &format!("{arg} needs a value"));
                };
                let ok = match arg {
                    "--seed" => parse_num(&v).map(|n| cfg.seed = n).is_some(),
                    "--cases" => parse_num(&v).map(|n| cfg.cases = n).is_some(),
                    "--jobs" => parse_num(&v)
                        .filter(|&n| n >= 1)
                        .map(|n| cfg.jobs = n as usize)
                        .is_some(),
                    "--ecc" => EccMode::parse(&v).map(|m| cfg.ecc = m).is_some(),
                    "--sites" => parse_sites(&v).map(|s| cfg.sites = s).is_some(),
                    "--kind" => KindChoice::parse(&v).map(|k| cfg.kind = k).is_some(),
                    "--engine" => EngineChoice::parse(&v).map(|e| cfg.engine = e).is_some(),
                    "--workload" => WorkloadKind::parse(&v).map(|w| cfg.workload = w).is_some(),
                    "--json" => {
                        json_path = Some(v.clone());
                        true
                    }
                    "--max-sdc" => parse_num(&v).map(|n| max_sdc = Some(n)).is_some(),
                    "--min-corrected-pct" => v
                        .parse::<f64>()
                        .map(|p| min_corrected_pct = Some(p))
                        .is_ok(),
                    _ => unreachable!(),
                };
                if !ok {
                    return usage("mfault", USAGE, &format!("bad value for {arg}: {v}"));
                }
            }
            other => return usage("mfault", USAGE, &format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let report = run(&cfg);
    let classes = [
        Classification::Masked,
        Classification::CorrectedRetry,
        Classification::CorrectedRollback,
        Classification::Uncorrectable,
        Classification::Sdc,
        Classification::Hang,
        Classification::Skipped,
    ];

    println!(
        "mfault: seed {} | {} cases | engine {} | workload {} | ecc {} | kind {} | recovery {}",
        cfg.seed,
        cfg.cases,
        cfg.engine.label(),
        cfg.workload.label(),
        cfg.ecc.label(),
        cfg.kind.label(),
        if cfg.recover { "on" } else { "off" },
    );
    if cfg.zero_fault {
        println!(
            "zero-fault mode: {} divergences over {} cases",
            report.zero_fault_divergences, cfg.cases
        );
    } else {
        println!("{:<20} {:>8}", "class", "cases");
        for class in classes {
            let n = report.count(class);
            if n > 0 {
                println!("{:<20} {:>8}", class.label(), n);
            }
        }
        println!();
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>12} {:>6} {:>6}",
            "site", "injected", "masked", "corrected", "uncorrect.", "sdc", "hang"
        );
        for &site in &cfg.sites {
            let of = |c: Classification| {
                report
                    .outcomes
                    .iter()
                    .filter(|o| o.site == Some(site) && o.class == c)
                    .count()
            };
            let injected = report
                .outcomes
                .iter()
                .filter(|o| o.site == Some(site))
                .count();
            println!(
                "{:<12} {:>8} {:>8} {:>10} {:>12} {:>6} {:>6}",
                site.label(),
                injected,
                of(Classification::Masked),
                of(Classification::CorrectedRetry) + of(Classification::CorrectedRollback),
                of(Classification::Uncorrectable),
                of(Classification::Sdc),
                of(Classification::Hang),
            );
        }
        println!();
        println!(
            "corrected {:.1}% | sdc {} | machine checks {} | scrubs {}",
            report.corrected_pct(),
            report.count(Classification::Sdc),
            report
                .outcomes
                .iter()
                .map(|o| o.machine_checks)
                .sum::<u64>(),
            report.outcomes.iter().map(|o| o.scrubs).sum::<u64>(),
        );
    }

    if let Some(path) = json_path {
        let text = report.to_json(&cfg).to_string_compact();
        if let Err(e) = std::fs::write(&path, text) {
            return fail("mfault", &format!("cannot write {path}: {e}"));
        }
    }

    if cfg.zero_fault && report.zero_fault_divergences > 0 {
        return fail(
            "mfault",
            &format!(
                "zero-fault campaign diverged in {} cases",
                report.zero_fault_divergences
            ),
        );
    }
    if let Some(cap) = max_sdc {
        let sdc = report.count(Classification::Sdc);
        if sdc > cap {
            return fail("mfault", &format!("{sdc} SDC cases exceed --max-sdc {cap}"));
        }
    }
    if let Some(floor) = min_corrected_pct {
        let pct = report.corrected_pct();
        if pct < floor {
            return fail(
                "mfault",
                &format!("corrected rate {pct:.1}% below --min-corrected-pct {floor}"),
            );
        }
    }
    ExitCode::SUCCESS
}
