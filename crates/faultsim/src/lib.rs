//! # metal-faultsim: deterministic transient-fault campaigns
//!
//! Runs seeded fault-injection campaigns against either Metal
//! execution engine through the shared [`metal_pipeline::Engine`]
//! trait, exercising the full robustness stack the paper's
//! architecture enables: ECC/parity detection hardware raises
//! machine-check exceptions, the per-layer delegation map routes them
//! to an mcode recovery mroutine, and `march.mscrub` repairs the
//! flagged word from the golden MRAM copy (or by SECDED syndrome
//! correction) before `mexit` re-executes the faulting instruction.
//!
//! Every campaign is a pure function of its seed: case seeds mix the
//! campaign seed with the global case index, shards own contiguous
//! index ranges, and the JSON report has sorted keys — so `mfault
//! --seed S --cases N` is bit-reproducible across runs *and* across
//! `--jobs` values.
//!
//! * [`fault`] — fault specs (transient / stuck-at) and their
//!   application to MRAM words, register files, TLB entries, cache
//!   tags, and pipeline latches.
//! * [`workload`] — victim programs: a live-site loop victim and
//!   grammar-generated fuzz programs, both with the shipped recovery
//!   mroutine delegated at entry 7.
//! * [`campaign`] — golden-run capture, seeded injection, and the
//!   masked / corrected / uncorrectable / SDC / hang classification.

pub mod campaign;
pub mod fault;
pub mod workload;

pub use campaign::{
    run, CampaignConfig, CaseOutcome, Classification, EngineChoice, KindChoice, Report,
    WorkloadKind,
};
pub use fault::{FaultKind, FaultSpec, FaultTarget};
