//! Fault specifications and their application to a running machine.
//!
//! A [`FaultSpec`] names one bit of one hardware structure. Transient
//! faults flip the bit once; stuck-at faults force it to a value and
//! are re-applied at chunk boundaries so later writes cannot clear
//! them. Sites map onto the injection hooks the hardware layers expose
//! (`Mram::inject_code_bit`, `MregFile::inject_bit`,
//! `Tlb::inject_entry_bit`, `Cache::inject_tag_bit`,
//! `Core::inject_latch_bit`).

use metal_core::Metal;
use metal_isa::reg::Reg;
use metal_pipeline::{Core, Engine, Interp};
use metal_trace::{EventKind, FaultSite};

/// How the injected bit misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A single bit flip (soft error): the bit inverts once.
    Transient,
    /// A hard fault: the bit reads as `value` no matter what is
    /// written. Modeled by re-forcing the bit between run chunks.
    StuckAt {
        /// The value the faulty bit is stuck at.
        value: bool,
    },
}

/// One concrete fault: a site, a structure index, a bit, and a kind.
///
/// The index is site-specific: an MRAM word index, a Metal/guest
/// register number, a TLB slot, a cache line (with [`CACHE_DSIDE`]
/// marking the D-cache), or a pipeline latch stage.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// The hardware structure attacked.
    pub site: FaultSite,
    /// Site-specific index within the structure.
    pub index: u32,
    /// Bit position within the selected word.
    pub bit: u8,
    /// Transient or stuck-at.
    pub kind: FaultKind,
}

/// Bit set in [`FaultSpec::index`] to select the D-cache instead of
/// the I-cache for [`FaultSite::Cache`].
pub const CACHE_DSIDE: u32 = 1 << 31;

/// An engine the campaign can inject into. Adds the one site that is
/// not reachable through [`Engine`]'s shared surface: inter-stage
/// pipeline latches, which only the pipelined core has.
pub trait FaultTarget: Engine<Hooks = Metal> {
    /// Flips a bit in an occupied inter-stage latch, if the engine
    /// models any. Returns false when the latch is empty or the engine
    /// has no pipeline (the fault is masked by construction).
    fn inject_latch(&mut self, stage: u8, bit: u8) -> bool;
}

impl FaultTarget for Core<Metal> {
    fn inject_latch(&mut self, stage: u8, bit: u8) -> bool {
        self.inject_latch_bit(stage, bit)
    }
}

impl FaultTarget for Interp<Metal> {
    fn inject_latch(&mut self, _stage: u8, _bit: u8) -> bool {
        false
    }
}

/// Applies a fault as a one-shot bit flip. Returns whether any state
/// actually changed (an empty TLB slot, invalid cache line, empty
/// latch, or `x0` absorbs the fault — masked by construction).
///
/// Code-word injection drops the shared decode cache so stale decoded
/// copies of the corrupted word cannot be fetched.
pub fn apply<E: FaultTarget>(engine: &mut E, spec: &FaultSpec) -> bool {
    let hit = match spec.site {
        FaultSite::MramCode => engine
            .hooks_mut()
            .mram
            .inject_code_bit(spec.index, spec.bit),
        FaultSite::MramData => engine
            .hooks_mut()
            .mram
            .inject_data_bit(spec.index, spec.bit),
        FaultSite::Mreg => {
            let n = spec.index as usize & 31;
            engine.hooks_mut().mregs.inject_bit(n, spec.bit);
            // `x0`-style masking does not exist for mregs: every slot
            // holds real state, so the flip always lands.
            true
        }
        FaultSite::GuestReg => match Reg::new(spec.index as u8) {
            Some(r) if r != Reg::ZERO => {
                let v = engine.state().regs.get(r);
                engine.state_mut().regs.set(r, v ^ (1 << (spec.bit & 31)));
                true
            }
            _ => false,
        },
        FaultSite::Tlb => engine
            .state_mut()
            .tlb
            .inject_entry_bit(spec.index as usize, spec.bit),
        FaultSite::Cache => {
            let line = (spec.index & !CACHE_DSIDE) as usize;
            let state = engine.state_mut();
            if spec.index & CACHE_DSIDE != 0 {
                state.dcache.inject_tag_bit(line, spec.bit)
            } else {
                state.icache.inject_tag_bit(line, spec.bit)
            }
        }
        FaultSite::Latch => engine.inject_latch(spec.index as u8, spec.bit),
    };
    if hit {
        if spec.site == FaultSite::MramCode {
            engine.state_mut().invalidate_decode_cache();
        }
        engine.state_mut().trace.emit(EventKind::FaultInjected {
            site: spec.site,
            addr: spec.index,
            bit: spec.bit,
        });
    }
    hit
}

/// Re-asserts a stuck-at fault: forces the bit back to its stuck
/// value if an intervening write repaired it. Only the readable sites
/// (MRAM words, registers) support stuck-at faults; the campaign
/// never draws stuck-at specs for the others.
pub fn force<E: FaultTarget>(engine: &mut E, spec: &FaultSpec, value: bool) {
    let bit = spec.bit & 31;
    let word = match spec.site {
        FaultSite::MramCode => engine.hooks().mram.code_word_at(spec.index),
        FaultSite::MramData => engine.hooks().mram.data_word_at(spec.index),
        FaultSite::Mreg => engine.hooks().mregs.get(spec.index as usize & 31),
        FaultSite::GuestReg => match Reg::new(spec.index as u8) {
            Some(r) => engine.state().regs.get(r),
            None => return,
        },
        _ => return,
    };
    if (word >> bit) & 1 != u32::from(value) {
        apply(engine, spec);
    }
}
