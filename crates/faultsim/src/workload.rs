//! Campaign workloads: the guest program and mroutines each fault is
//! injected into.
//!
//! Two shapes:
//!
//! * **loop** — a purpose-built victim whose architecturally *live*
//!   state is known: the guest calls mroutine 0 in a counted loop, and
//!   that routine re-reads `m1` and the first two MRAM data words on
//!   every iteration, then stores to a third. Faults injected into
//!   those structures (or the routine's code words) are re-read before
//!   the program ends, so with ECC enabled they are *detected* rather
//!   than silently masked — the workload the smoke campaign's
//!   ≥95%-corrected bar is measured against.
//! * **fuzz** — programs from the [`metal_fuzz`] grammar, for honest
//!   exploratory campaigns over arbitrary mcode. Much of a random
//!   program's state is dead, so high masked rates are expected.
//!
//! Both attach the scrub-and-retry recovery mroutine (the same source
//! as `examples/mcode/mcheck_recover.s`) at entry 7 — one slot past
//! the fuzz grammar's highest reserved entry — and delegate the
//! machine-check cause to it, unless recovery is disabled.

use crate::campaign::{CampaignConfig, WorkloadKind};
use metal_core::{Metal, MetalBuilder};
use metal_pipeline::trap::TrapCause;
use metal_trace::FaultSite;
use metal_util::Rng;
use std::ops::Range;

/// Entry slot for the recovery mroutine (the fuzz grammar reserves
/// entries 0–6).
pub const RECOVERY_ENTRY: u8 = 7;

/// The scrub-and-retry recovery mroutine, shared with the shipped
/// example so the documented artifact is the tested one.
pub const RECOVERY_SRC: &str = include_str!("../../../examples/mcode/mcheck_recover.s");

/// The loop workload's probe mroutine: touches `m1`, MRAM data words
/// 0 and 1, and stores to word 2 on every guest iteration, keeping
/// those sites architecturally live. Temporaries are zeroed before
/// `mexit` so the guest-visible register file is deterministic at
/// every iteration boundary.
const PROBE_SRC: &str = "\
rmr t0, m1
mld t1, 0(zero)
mld t2, 4(zero)
add t1, t1, t2
mst t1, 8(zero)
li t0, 0
li t1, 0
li t2, 0
mexit";

/// A built campaign victim plus the live-site map injection draws
/// from.
pub struct Built {
    /// The Metal extension (MRAM, registers, delegations, ECC).
    pub metal: Metal,
    /// Guest program image, loaded at address 0.
    pub program: Vec<u8>,
    /// Whether the guest expects software TLB translation.
    pub soft_tlb: bool,
    /// MRAM code word indices worth attacking (installed mroutine
    /// bodies, excluding the recovery routine).
    pub code_words: Range<u32>,
    /// MRAM data word indices worth attacking.
    pub data_words: Range<u32>,
    /// Metal register numbers worth attacking.
    pub mregs: Vec<u32>,
}

/// Builds the victim machine for one case.
///
/// # Errors
///
/// Returns a message when the Metal build or guest assembly fails
/// (possible for grammar-generated cases; the campaign counts these
/// as skipped).
pub fn build(cfg: &CampaignConfig, seed: u64) -> Result<Built, String> {
    match cfg.workload {
        WorkloadKind::Loop => build_loop(cfg, seed),
        WorkloadKind::Fuzz => build_fuzz(cfg, seed),
    }
}

fn routine_words(src: &str) -> u32 {
    metal_asm::assemble_at(src, metal_core::mram::MRAM_BASE)
        .map(|w| w.len() as u32)
        .unwrap_or(0)
}

fn finish(
    builder: MetalBuilder,
    cfg: &CampaignConfig,
    guest: &str,
    soft_tlb: bool,
    data_words: Range<u32>,
    mregs: Vec<u32>,
) -> Result<Built, String> {
    let mut builder = builder.ecc(cfg.ecc);
    if cfg.recover {
        builder = builder
            .routine(RECOVERY_ENTRY, "mcheck-recover", RECOVERY_SRC)
            .delegate_exception(
                TrapCause::MachineCheck {
                    site: FaultSite::MramCode,
                    syndrome: 0,
                },
                RECOVERY_ENTRY,
            );
    }
    let (metal, palcode, _warnings) = builder.build().map_err(|e| format!("metal build: {e}"))?;
    debug_assert!(palcode.is_empty(), "campaigns use MRAM dispatch");
    let installed = (metal.config().mram.code_bytes - metal.mram.code_free()) / 4;
    let live_end = if cfg.recover {
        installed.saturating_sub(routine_words(RECOVERY_SRC))
    } else {
        installed
    };
    let words = metal_asm::assemble_at(guest, 0).map_err(|e| format!("guest assembly: {e}"))?;
    Ok(Built {
        metal,
        program: words.iter().flat_map(|w| w.to_le_bytes()).collect(),
        soft_tlb,
        code_words: 0..live_end.max(1),
        data_words,
        mregs,
    })
}

fn build_loop(cfg: &CampaignConfig, seed: u64) -> Result<Built, String> {
    // Vary the iteration count a little per case so campaigns sample
    // different injection windows, but keep every site live to the end.
    let iters = 24 + (Rng::new(seed).below(16)) as u32;
    let guest = format!(
        "li s0, 0\n\
         li s1, {iters}\n\
         loop:\n\
         menter 0\n\
         addi s0, s0, 1\n\
         blt s0, s1, loop\n\
         addi a0, s0, 0\n\
         ebreak"
    );
    let builder = MetalBuilder::new().routine(0, "probe", PROBE_SRC);
    // Live data words: the probe re-reads words 0 and 1 each
    // iteration; word 2 is its store target (a fault there is
    // overwritten, not read — excluded). Live mreg: only m1 is read.
    finish(builder, cfg, &guest, false, 0..2, vec![1])
}

fn build_fuzz(cfg: &CampaignConfig, seed: u64) -> Result<Built, String> {
    let case = metal_fuzz::grammar::generate(seed);
    let mut builder = MetalBuilder::new();
    for r in &case.routines {
        builder = builder.routine(r.entry, &r.name, &r.src);
    }
    for &(cause, entry) in &case.delegations {
        builder = builder.delegate_exception(cause, entry);
    }
    let data_words = 0..16; // The grammar's mld/mst offsets stay below 64 bytes.
    finish(
        builder,
        cfg,
        &case.guest,
        case.soft_tlb,
        data_words,
        (0..32).collect(),
    )
}
