//! Deterministic fault campaigns: golden run, seeded injection,
//! classification against the golden state.
//!
//! Each case is an independent function of `(campaign seed, case
//! index)`: the case seed is derived by splitmix-mixing the two, so a
//! campaign sharded over N worker threads produces *bit-identical*
//! results for any `--jobs` value — shards own contiguous index
//! ranges and the merged outcome vector is always in index order.
//!
//! Per case: build the victim, snapshot it pristine, run it clean to
//! capture the **golden** digest, then rewind, step to a seeded
//! injection point, apply the fault, and run to completion under a
//! watchdog. The final state is classified:
//!
//! | class                   | detected? | state vs golden |
//! |-------------------------|-----------|-----------------|
//! | `masked`                | no        | identical       |
//! | `corrected-retry`       | yes       | identical (scrub + re-execute) |
//! | `corrected-rollback`    | yes       | identical after checkpoint rollback |
//! | `uncorrectable`         | yes       | divergent       |
//! | `sdc`                   | no        | divergent — silent data corruption |
//! | `hang`                  | —         | watchdog fuel expired |
//!
//! A `Fatal` halt with no machine check counts as divergence without
//! detection, i.e. SDC: the machine died for an undiagnosed reason.
//! When recovery declares a fault uncorrectable (`mabort`), the
//! harness plays the host's role: it rolls back to the pristine
//! checkpoint and re-runs — a transient fault clears and the rerun
//! must match golden (`corrected-rollback`); a stuck-at fault
//! persists and stays `uncorrectable`.
//!
//! The digest covers guest registers, the halt reason, RAM, and MRAM
//! data — the architecturally-visible outcome. Metal scratch
//! registers, cycle and instruction counts are excluded: a recovered
//! run legitimately executes extra (recovery) instructions.

use crate::fault::{FaultKind, FaultSpec, FaultTarget, CACHE_DSIDE};
use crate::workload;
use metal_core::{EccMode, Metal};
use metal_pipeline::state::{CoreConfig, TranslationMode};
use metal_pipeline::{Core, Engine, HaltReason, Interp};
use metal_trace::FaultSite;
use metal_util::json::Json;
use metal_util::Rng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Watchdog fuel per run (cycles on the pipelined core, steps on the
/// interpreter).
pub const FUEL: u64 = 2_000_000;

/// Cycle/step granularity between stuck-at re-assertions.
const CHUNK: u64 = 2_048;

/// Which engine the campaign drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// The 5-stage pipelined core (cache/TLB/latch sites live here).
    Pipeline,
    /// The functional reference interpreter.
    Interp,
}

impl EngineChoice {
    /// Parses the `--engine` operand.
    #[must_use]
    pub fn parse(s: &str) -> Option<EngineChoice> {
        match s {
            "pipeline" => Some(EngineChoice::Pipeline),
            "interp" => Some(EngineChoice::Interp),
            _ => None,
        }
    }

    /// CLI/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::Pipeline => "pipeline",
            EngineChoice::Interp => "interp",
        }
    }
}

/// Which victim programs the campaign runs (see [`crate::workload`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The live-site loop victim (smoke campaigns, coverage bars).
    Loop,
    /// Grammar-generated programs (exploratory campaigns).
    Fuzz,
}

impl WorkloadKind {
    /// Parses the `--workload` operand.
    #[must_use]
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        match s {
            "loop" => Some(WorkloadKind::Loop),
            "fuzz" => Some(WorkloadKind::Fuzz),
            _ => None,
        }
    }

    /// CLI/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Loop => "loop",
            WorkloadKind::Fuzz => "fuzz",
        }
    }
}

/// Which fault kinds the schedule draws.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KindChoice {
    /// Single-bit transient flips only.
    Transient,
    /// Stuck-at faults only (readable sites).
    Stuck,
    /// A seeded mix of both.
    Mixed,
}

impl KindChoice {
    /// Parses the `--kind` operand.
    #[must_use]
    pub fn parse(s: &str) -> Option<KindChoice> {
        match s {
            "transient" => Some(KindChoice::Transient),
            "stuck" => Some(KindChoice::Stuck),
            "mixed" => Some(KindChoice::Mixed),
            _ => None,
        }
    }

    /// CLI/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KindChoice::Transient => "transient",
            KindChoice::Stuck => "stuck",
            KindChoice::Mixed => "mixed",
        }
    }
}

/// Full campaign configuration (everything `mfault` parses).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every case derives from it and its index.
    pub seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Worker threads (results are identical for any value).
    pub jobs: usize,
    /// Check-bit scheme on MRAM and the Metal register file.
    pub ecc: EccMode,
    /// Fault sites the schedule draws from.
    pub sites: Vec<FaultSite>,
    /// Fault kinds the schedule draws.
    pub kind: KindChoice,
    /// Engine under test.
    pub engine: EngineChoice,
    /// Victim programs.
    pub workload: WorkloadKind,
    /// Attach and delegate the recovery mroutine.
    pub recover: bool,
    /// Inject nothing; assert the harness itself perturbs nothing.
    pub zero_fault: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 1,
            cases: 100,
            jobs: 1,
            ecc: EccMode::Secded,
            sites: vec![FaultSite::MramCode, FaultSite::MramData, FaultSite::Mreg],
            kind: KindChoice::Transient,
            engine: EngineChoice::Pipeline,
            workload: WorkloadKind::Loop,
            recover: true,
            zero_fault: false,
        }
    }
}

/// The verdict for one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classification {
    /// No machine check, final state identical to golden.
    Masked,
    /// Detected, scrubbed in place, re-executed: state identical.
    CorrectedRetry,
    /// Detected, declared uncorrectable, repaired by checkpoint
    /// rollback and clean re-run.
    CorrectedRollback,
    /// Detected but the final state diverged from golden.
    Uncorrectable,
    /// Silent data corruption: divergence with no machine check.
    Sdc,
    /// The watchdog fuel expired.
    Hang,
    /// The case could not run (build failure or golden-run timeout);
    /// no fault was evaluated.
    Skipped,
}

impl Classification {
    /// Report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Classification::Masked => "masked",
            Classification::CorrectedRetry => "corrected-retry",
            Classification::CorrectedRollback => "corrected-rollback",
            Classification::Uncorrectable => "uncorrectable",
            Classification::Sdc => "sdc",
            Classification::Hang => "hang",
            Classification::Skipped => "skipped",
        }
    }

    /// Both corrected flavors.
    #[must_use]
    pub fn is_corrected(self) -> bool {
        matches!(
            self,
            Classification::CorrectedRetry | Classification::CorrectedRollback
        )
    }
}

/// One case's result.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Global case index.
    pub index: u64,
    /// Site attacked (`None` for skipped or zero-fault cases).
    pub site: Option<FaultSite>,
    /// The verdict.
    pub class: Classification,
    /// Machine checks the injected run raised.
    pub machine_checks: u64,
    /// Successful scrubs the recovery mroutine performed.
    pub scrubs: u64,
    /// Whether the injection changed any state at all.
    pub applied: bool,
}

/// Aggregated campaign results.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-case outcomes, in case-index order.
    pub outcomes: Vec<CaseOutcome>,
    /// Zero-fault divergences (must be 0; only populated with
    /// [`CampaignConfig::zero_fault`]).
    pub zero_fault_divergences: u64,
}

impl Report {
    /// Count of outcomes with the given class.
    #[must_use]
    pub fn count(&self, class: Classification) -> u64 {
        self.outcomes.iter().filter(|o| o.class == class).count() as u64
    }

    /// Corrected cases (retry + rollback).
    #[must_use]
    pub fn corrected(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.class.is_corrected())
            .count() as u64
    }

    /// Fraction of evaluated (non-skipped) cases that were corrected,
    /// in percent. 100.0 for an empty campaign.
    #[must_use]
    pub fn corrected_pct(&self) -> f64 {
        let evaluated = self.outcomes.len() as u64 - self.count(Classification::Skipped);
        if evaluated == 0 {
            return 100.0;
        }
        self.corrected() as f64 * 100.0 / evaluated as f64
    }

    /// Serializes the whole report as deterministic JSON (sorted
    /// object keys, cases in index order) — byte-identical across
    /// runs and `--jobs` values for the same configuration.
    #[must_use]
    pub fn to_json(&self, cfg: &CampaignConfig) -> Json {
        let num = |v: u64| Json::Num(v as f64);
        let mut campaign = BTreeMap::new();
        campaign.insert("seed".to_owned(), num(cfg.seed));
        campaign.insert("cases".to_owned(), num(cfg.cases));
        campaign.insert("ecc".to_owned(), Json::Str(cfg.ecc.label().to_owned()));
        campaign.insert("kind".to_owned(), Json::Str(cfg.kind.label().to_owned()));
        campaign.insert(
            "engine".to_owned(),
            Json::Str(cfg.engine.label().to_owned()),
        );
        campaign.insert(
            "workload".to_owned(),
            Json::Str(cfg.workload.label().to_owned()),
        );
        campaign.insert("recover".to_owned(), Json::Bool(cfg.recover));
        campaign.insert(
            "sites".to_owned(),
            Json::Arr(
                cfg.sites
                    .iter()
                    .map(|s| Json::Str(s.label().to_owned()))
                    .collect(),
            ),
        );

        let classes_of = |filter: &dyn Fn(&CaseOutcome) -> bool| {
            let mut m = BTreeMap::new();
            for class in [
                Classification::Masked,
                Classification::CorrectedRetry,
                Classification::CorrectedRollback,
                Classification::Uncorrectable,
                Classification::Sdc,
                Classification::Hang,
                Classification::Skipped,
            ] {
                let n = self
                    .outcomes
                    .iter()
                    .filter(|o| o.class == class && filter(o))
                    .count();
                m.insert(class.label().to_owned(), num(n as u64));
            }
            m
        };

        let mut sites = BTreeMap::new();
        for &site in &cfg.sites {
            let mut table = classes_of(&|o: &CaseOutcome| o.site == Some(site));
            let injected = self
                .outcomes
                .iter()
                .filter(|o| o.site == Some(site))
                .count();
            table.insert("injected".to_owned(), num(injected as u64));
            sites.insert(site.label().to_owned(), Json::Obj(table));
        }

        let mut totals = BTreeMap::new();
        totals.insert(
            "machine-checks".to_owned(),
            num(self.outcomes.iter().map(|o| o.machine_checks).sum()),
        );
        totals.insert(
            "scrubs".to_owned(),
            num(self.outcomes.iter().map(|o| o.scrubs).sum()),
        );
        totals.insert(
            "applied".to_owned(),
            num(self.outcomes.iter().filter(|o| o.applied).count() as u64),
        );
        totals.insert(
            "corrected-pct".to_owned(),
            Json::Num((self.corrected_pct() * 100.0).round() / 100.0),
        );
        totals.insert(
            "zero-fault-divergences".to_owned(),
            num(self.zero_fault_divergences),
        );

        let cases = self
            .outcomes
            .iter()
            .map(|o| {
                Json::Arr(vec![
                    num(o.index),
                    Json::Str(o.site.map_or("none", FaultSite::label).to_owned()),
                    Json::Str(o.class.label().to_owned()),
                ])
            })
            .collect();

        let mut root = BTreeMap::new();
        root.insert("campaign".to_owned(), Json::Obj(campaign));
        root.insert("classes".to_owned(), Json::Obj(classes_of(&|_| true)));
        root.insert("sites".to_owned(), Json::Obj(sites));
        root.insert("totals".to_owned(), Json::Obj(totals));
        root.insert("cases".to_owned(), Json::Arr(cases));
        Json::Obj(root)
    }
}

/// Mixes the campaign seed with a global case index. Deliberately
/// *not* a function of the shard, so sharding cannot change results.
#[must_use]
pub fn case_seed(seed: u64, index: u64) -> u64 {
    Rng::new(seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

/// Runs a campaign on the configured engine.
#[must_use]
pub fn run(cfg: &CampaignConfig) -> Report {
    match cfg.engine {
        EngineChoice::Pipeline => run_typed::<Core<Metal>>(cfg),
        EngineChoice::Interp => run_typed::<Interp<Metal>>(cfg),
    }
}

fn run_typed<E: FaultTarget>(cfg: &CampaignConfig) -> Report {
    let outcomes: Vec<CaseOutcome> = if cfg.jobs <= 1 || cfg.cases < 2 {
        (0..cfg.cases).map(|i| run_case::<E>(cfg, i)).collect()
    } else {
        let jobs = cfg.jobs.min(cfg.cases as usize);
        let per = (cfg.cases as usize).div_ceil(jobs);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|k| {
                    let lo = (k * per) as u64;
                    let hi = (((k + 1) * per) as u64).min(cfg.cases);
                    scope.spawn(move || (lo..hi).map(|i| run_case::<E>(cfg, i)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        })
    };
    let zero_fault_divergences = outcomes
        .iter()
        .filter(|o| cfg.zero_fault && o.class == Classification::Sdc)
        .count() as u64;
    Report {
        outcomes,
        zero_fault_divergences,
    }
}

/// Digest of the architecturally-visible machine state (FNV-1a).
fn digest<E: Engine<Hooks = Metal>>(engine: &E, full: bool) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    let state = engine.state();
    for r in state.regs.snapshot() {
        eat(&r.to_le_bytes());
    }
    match &state.halted {
        None => eat(&[0]),
        Some(HaltReason::Ebreak { code }) => {
            eat(&[1]);
            eat(&code.to_le_bytes());
        }
        Some(HaltReason::Fatal(msg)) => {
            eat(&[2]);
            eat(msg.as_bytes());
        }
        Some(HaltReason::Timeout) => eat(&[3]),
    }
    let ram = &state.bus.ram;
    eat(ram.dump(0, ram.size() as u32).expect("full-RAM dump"));
    eat(engine.hooks().mram.data());
    if full {
        for n in 0..32 {
            eat(&engine.hooks().mregs.get(n).to_le_bytes());
        }
        eat(&state.perf.cycles.to_le_bytes());
        eat(&state.perf.instret.to_le_bytes());
        eat(&state.asid.to_le_bytes());
    }
    h
}

/// Draws a fault spec from the case RNG and the workload's live-site
/// map. Sites without readable words degrade stuck-at to transient.
fn draw_spec<E: FaultTarget>(
    rng: &mut Rng,
    cfg: &CampaignConfig,
    engine: &E,
    code_words: &Range<u32>,
    data_words: &Range<u32>,
    mregs: &[u32],
) -> FaultSpec {
    let site = *rng.pick(&cfg.sites);
    let (index, bit) = match site {
        FaultSite::MramCode => (
            code_words.start + rng.below(code_words.len() as u64) as u32,
            rng.below(32) as u8,
        ),
        FaultSite::MramData => (
            data_words.start + rng.below(data_words.len() as u64) as u32,
            rng.below(32) as u8,
        ),
        FaultSite::Mreg => (*rng.pick(mregs), rng.below(32) as u8),
        FaultSite::GuestReg => (1 + rng.below(31) as u32, rng.below(32) as u8),
        FaultSite::Tlb => (
            rng.below(engine.state().tlb.capacity().max(1) as u64) as u32,
            rng.below(64) as u8,
        ),
        FaultSite::Cache => {
            let conf = engine.state().icache.config();
            let lines = (conf.size_bytes / conf.line_bytes).max(1) as u64;
            let dside = if rng.chance() { CACHE_DSIDE } else { 0 };
            (dside | rng.below(lines) as u32, rng.below(32) as u8)
        }
        FaultSite::Latch => (rng.below(4) as u32, rng.below(64) as u8),
    };
    let forcible = matches!(
        site,
        FaultSite::MramCode | FaultSite::MramData | FaultSite::Mreg | FaultSite::GuestReg
    );
    let kind = match cfg.kind {
        KindChoice::Transient => FaultKind::Transient,
        KindChoice::Stuck | KindChoice::Mixed
            if forcible && (cfg.kind == KindChoice::Stuck || rng.chance()) =>
        {
            FaultKind::StuckAt {
                value: rng.chance(),
            }
        }
        _ => FaultKind::Transient,
    };
    FaultSpec {
        site,
        index,
        bit,
        kind,
    }
}

fn skipped(index: u64) -> CaseOutcome {
    CaseOutcome {
        index,
        site: None,
        class: Classification::Skipped,
        machine_checks: 0,
        scrubs: 0,
        applied: false,
    }
}

/// Runs the machine to completion, re-asserting a stuck-at fault at
/// chunk boundaries.
fn run_faulty<E: FaultTarget>(engine: &mut E, spec: &FaultSpec) {
    match spec.kind {
        FaultKind::Transient => {
            let _ = engine.run_fuel(FUEL);
        }
        FaultKind::StuckAt { value } => {
            let mut spent = 0u64;
            while engine.state().halted.is_none() && spent < FUEL {
                let _ = engine.run(CHUNK);
                spent += CHUNK;
                if engine.state().halted.is_none() {
                    crate::fault::force(engine, spec, value);
                }
            }
            if engine.state().halted.is_none() {
                engine.state_mut().halted = Some(HaltReason::Timeout);
            }
        }
    }
}

fn run_case<E: FaultTarget>(cfg: &CampaignConfig, index: u64) -> CaseOutcome {
    let seed = case_seed(cfg.seed, index);
    let mut rng = Rng::new(seed);
    let Ok(built) = workload::build(cfg, seed) else {
        return skipped(index);
    };
    let mut engine = E::new(CoreConfig::default(), built.metal);
    if built.soft_tlb {
        engine.state_mut().translation = TranslationMode::SoftTlb;
    }
    engine.load_segments([(0u32, built.program.as_slice())], 0);
    let pristine = engine.snapshot();

    let golden_halt = engine.run_fuel(FUEL);
    if matches!(golden_halt, HaltReason::Timeout) {
        return skipped(index);
    }
    let golden_instret = engine.state().perf.instret;
    let golden = digest(&engine, false);

    if cfg.zero_fault {
        // No injection: rewinding and re-running must reproduce the
        // golden run *exactly*, including timing and Metal scratch
        // state — proof the harness itself perturbs nothing.
        let golden_full = digest(&engine, true);
        engine.restore(&pristine);
        let _ = engine.run_fuel(FUEL);
        let class = if digest(&engine, true) == golden_full {
            Classification::Masked
        } else {
            Classification::Sdc
        };
        return CaseOutcome {
            index,
            site: None,
            class,
            machine_checks: engine.hooks().stats.machine_checks,
            scrubs: engine.hooks().stats.scrubs,
            applied: false,
        };
    }

    let spec = draw_spec(
        &mut rng,
        cfg,
        &engine,
        &built.code_words,
        &built.data_words,
        &built.mregs,
    );
    // Inject inside the first ~90% of the golden run so the corrupted
    // state has a chance to be consumed before the program ends.
    let window = (golden_instret.saturating_mul(9) / 10).max(1);
    let inject_at = rng.below(window);

    engine.restore(&pristine);
    engine.step_insns(inject_at);
    let applied = crate::fault::apply(&mut engine, &spec);
    run_faulty(&mut engine, &spec);

    let halt = engine
        .state()
        .halted
        .clone()
        .expect("watchdog guarantees a halt");
    let machine_checks = engine.hooks().stats.machine_checks;
    let scrubs = engine.hooks().stats.scrubs;
    let aborted =
        matches!(&halt, HaltReason::Fatal(m) if m.contains("machine-check recovery abort"));

    let class = if matches!(halt, HaltReason::Timeout) {
        Classification::Hang
    } else if aborted {
        // Recovery declared the fault uncorrectable; play the host's
        // role and roll back to the checkpoint. A transient fault is
        // gone after the rewind; a stuck-at fault persists.
        engine.restore(&pristine);
        match spec.kind {
            FaultKind::Transient => {
                let _ = engine.run_fuel(FUEL);
            }
            FaultKind::StuckAt { .. } => {
                if crate::fault::apply(&mut engine, &spec) {
                    run_faulty(&mut engine, &spec);
                } else {
                    let _ = engine.run_fuel(FUEL);
                }
            }
        }
        if digest(&engine, false) == golden {
            Classification::CorrectedRollback
        } else {
            Classification::Uncorrectable
        }
    } else if digest(&engine, false) == golden {
        if machine_checks > 0 {
            Classification::CorrectedRetry
        } else {
            Classification::Masked
        }
    } else if machine_checks > 0 {
        Classification::Uncorrectable
    } else {
        Classification::Sdc
    };

    CaseOutcome {
        index,
        site: Some(spec.site),
        class,
        machine_checks,
        scrubs,
        applied,
    }
}
