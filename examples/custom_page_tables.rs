//! Custom page tables: demand translation through an mroutine walker.
//!
//! The paper's §3.2 demo: the OS keeps an x86-style radix page table in
//! ordinary memory; TLB misses are delegated to an mroutine that walks
//! it with physical loads and installs the translation with `mtlbw` —
//! "in a few lines of assembly". Protection violations and unmapped
//! pages are delivered onward to the OS fault handler.
//!
//! Run with: `cargo run --example custom_page_tables`

use metal_core::MetalBuilder;
use metal_ext::machine::run_guest;
use metal_ext::pagetable::{self, GuestPageTable};
use metal_mem::tlb::Pte;
use metal_pipeline::state::{CoreConfig, TranslationMode};
use metal_pipeline::HaltReason;

const GUEST: &str = r"
        la a0, os_fault
        menter 10              # register the OS fault handler
        # Touch a mapped read-write page: faults once, refills, retries.
        li s0, 0x100000
        li t0, 1234
        sw t0, 0(s0)
        lw s1, 0(s0)
        # Read through a read-only alias of another frame.
        li s2, 0x200000
        lw s3, 0(s2)
        # Now violate it: the walker probes the TLB, sees the entry, and
        # delivers a protection fault to the OS.
        sw t0, 0(s2)
        li a0, 0
        ebreak
os_fault:
        # Delivery convention: t0 = faulting va.
        mv a0, t0
        ebreak
";

fn main() {
    let mut core = pagetable::install(MetalBuilder::new())
        .build_core(CoreConfig {
            ram_bytes: 8 << 20,
            ..CoreConfig::default()
        })
        .expect("walker mroutines verify");

    // The "OS" builds its page table in guest RAM.
    let ram = &mut core.state.bus.ram;
    let mut pt = GuestPageTable::new(ram, 0x40_0000, 0x48_0000);
    pt.identity_map(ram, 0, 16, Pte::R | Pte::W | Pte::X); // kernel/user image
    pt.map(ram, 0x10_0000, 0x20_0000, Pte::R | Pte::W); // anonymous page
    pt.map(ram, 0x20_0000, 0x21_0000, Pte::R); // read-only alias
    ram.write_u32(0x21_0000, 777).unwrap();
    let root = pt.root;
    core.hooks.mram.data_mut()[64..68].copy_from_slice(&root.to_le_bytes());
    core.state.translation = TranslationMode::SoftTlb;

    let halt = run_guest(&mut core, GUEST, 1_000_000);
    match halt {
        Some(HaltReason::Ebreak { code }) => {
            println!("guest stopped with a0 = {code:#x}");
            assert_eq!(
                code, 0x20_0000,
                "the write to the RO page faulted to the OS"
            );
        }
        other => panic!("unexpected halt {other:?}"),
    }
    println!(
        "page faults delegated to the mroutine walker: {}",
        core.hooks.stats.delegated_exceptions
    );
    println!(
        "TLB now holds {} live translations installed by mcode.",
        core.state.tlb.occupancy()
    );
}
