//! Quickstart: define a custom instruction in mcode and call it.
//!
//! The paper's pitch in one file: a *developer* (not the processor
//! vendor) adds a `popcount` instruction to the machine. The mroutine is
//! ordinary assembly plus the Metal instructions, loaded at boot,
//! verified, and invoked from the application with `menter` at
//! microcode-level cost.
//!
//! Run with: `cargo run --example quickstart`

use metal_core::MetalBuilder;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::HaltReason;

/// A popcount "instruction": a0 = number of set bits in a0.
/// Clobbers t0/t1 (documented ABI of this custom instruction).
const POPCOUNT: &str = r"
    li t0, 0              # count
loop:
    beqz a0, done
    addi t1, a0, -1
    and a0, a0, t1        # clear the lowest set bit
    addi t0, t0, 1
    j loop
done:
    mv a0, t0
    mexit
";

/// The application: popcount three values and sum the results.
const APP: &str = r"
    li s1, 0
    li a0, 0xFF00FF00
    menter 1
    add s1, s1, a0
    li a0, 0x12345678
    menter 1
    add s1, s1, a0
    li a0, 1
    menter 1
    add s1, s1, a0
    mv a0, s1
    ebreak
";

fn main() {
    // Boot-time: assemble, verify, and install the mroutine at entry 1.
    let mut core = MetalBuilder::new()
        .routine(1, "popcount", POPCOUNT)
        .build_core(CoreConfig::default())
        .expect("mroutine assembles and verifies");

    // Load and run the application.
    let words = metal_asm::assemble_at(APP, 0).expect("application assembles");
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);

    match core.run(1_000_000) {
        Some(HaltReason::Ebreak { code }) => {
            println!("popcount(0xFF00FF00) + popcount(0x12345678) + popcount(1) = {code}");
            assert_eq!(code, 16 + 13 + 1);
        }
        other => panic!("unexpected halt: {other:?}"),
    }

    let perf = &core.state.perf;
    println!(
        "ran {} instructions in {} cycles (CPI {:.2});",
        perf.instret,
        perf.cycles,
        perf.cycles as f64 / perf.instret as f64
    );
    println!(
        "{} menter transitions, {} mexits — each at near-zero overhead.",
        core.hooks.stats.menters, core.hooks.stats.mexits
    );
}
