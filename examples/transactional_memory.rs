//! Software transactional memory by interception (paper §3.3).
//!
//! No compiler instrumentation: ordinary `lw`/`sw` between `tstart` and
//! `tcommit` are intercepted at runtime and turned into TL2-style
//! tracked accesses. The demo commits one transaction, then constructs
//! an interleaved conflict whose loser aborts with its buffered writes
//! discarded.
//!
//! Run with: `cargo run --example transactional_memory`

use metal_core::MetalBuilder;
use metal_ext::machine::run_guest;
use metal_ext::stm;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::HaltReason;

const LOCKTAB: u32 = 0x30_0000;

const GUEST: &str = r"
        li s0, 0x40000         # account A
        li s2, 0x40040         # account B (distinct lock slot)
        li t0, 100
        sw t0, 0(s0)
        li t0, 50
        sw t0, 0(s2)

        # --- transfer 30 from A to B, transactionally ---
        li a0, 0
        menter 12              # tstart(0)
        lw t3, 0(s0)
        addi t3, t3, -30
        sw t3, 0(s0)
        lw t3, 0(s2)
        addi t3, t3, 30
        sw t3, 0(s2)
        menter 15              # tcommit -> a0 = 1
        mv s4, a0

        # --- interleaved conflict: T1 reads A, T0 changes A, T1 loses ---
        li a0, 1
        menter 12              # tstart(1)
        lw s5, 0(s0)           # T1 reads A = 70
        menter 17              # suspend T1
        li a0, 0
        menter 12              # tstart(0)
        lw t3, 0(s0)
        addi t3, t3, -5
        sw t3, 0(s0)
        menter 15              # T0 commits (A = 65)
        li a0, 1
        menter 18              # resume T1
        addi s5, s5, 1000
        sw s5, 0(s0)           # T1's doomed write
        menter 15              # tcommit -> a0 = 0 (aborted)
        mv s6, a0

        lw s7, 0(s0)           # final A = 65 (T1's write discarded)
        lw s8, 0(s2)           # final B = 80
        # pack results: s4 | s6<<4 | A<<8 | B<<20
        slli s6, s6, 4
        or a0, s4, s6
        slli s7, s7, 8
        or a0, a0, s7
        slli s8, s8, 20
        or a0, a0, s8
        ebreak
";

fn main() {
    let mut core = stm::install(MetalBuilder::new())
        .build_core(CoreConfig::default())
        .expect("STM mroutines verify");
    core.hooks.mram.data_mut()[1028..1032].copy_from_slice(&LOCKTAB.to_le_bytes());

    let halt = run_guest(&mut core, GUEST, 10_000_000);
    let Some(HaltReason::Ebreak { code }) = halt else {
        panic!("unexpected halt {halt:?}");
    };
    let commit1 = code & 0xF;
    let commit2 = (code >> 4) & 0xF;
    let a = (code >> 8) & 0xFFF;
    let b = (code >> 20) & 0xFFF;
    println!("transfer transaction committed: {}", commit1 == 1);
    println!("conflicting transaction aborted: {}", commit2 == 0);
    println!("final balances: A = {a}, B = {b}");
    assert_eq!((commit1, commit2, a, b), (1, 0, 65, 80));
    println!(
        "\nintercepted memory accesses: {} (loads+stores emulated by tread/twrite)",
        core.hooks.stats.intercepts
    );
    for (name, insns) in stm::instruction_counts() {
        println!("  mroutine {name:<9} {insns:>4} instructions");
    }
}
