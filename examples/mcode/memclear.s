# Zeroes the first 16 MRAM data words with a counted loop. The trip
# count is a compile-time constant, so the analyzer derives a finite
# worst-case instruction count (no unbounded-loop warning) and the
# routine fits any reasonable budget.
#
#   mlint examples/mcode/memclear.s
li t0, 16
li t1, 60
loop:
mst zero, 0(t1)
addi t1, t1, -4
addi t0, t0, -1
bnez t0, loop
mexit
