# Machine-check recovery mroutine (delegate the machine-check cause to
# it). `march.mscrub` repairs the word the hardware flagged — from the
# golden MRAM copy, or by ECC syndrome correction for Metal registers —
# and returns nonzero on success. `mexit` then re-executes the faulting
# instruction (m31 was set to the faulting pc at delivery), which now
# re-reads the scrubbed word. If the scrub fails (parity-only
# detection, double-bit error), writing a nonzero value to the `mabort`
# MCR declares the fault uncorrectable so the host can roll back to a
# checkpoint instead of silently continuing on corrupted state.
#
#   mlint examples/mcode/mcheck_recover.s
mscrub t0
bnez t0, done
li t0, 1
wmr mabort, t0
done:
li t0, 0
mexit
