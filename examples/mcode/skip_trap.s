# Instruction-skip trap handler (paper §2): delegated as an exception
# handler, it advances the saved return address past the trapping
# instruction and resumes the guest.
#
# Lint-clean under the full battery:
#   mlint examples/mcode/skip_trap.s
# m31 is written from a value *derived from* m31, so the return-address
# check accepts it; nothing secret leaves Metal mode.
rmr t0, m31
addi t0, t0, 4
wmr m31, t0
mexit
