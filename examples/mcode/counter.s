# Invocation counter: bumps a count in MRAM data word 0 on every call.
# The accesses are constant offsets, so the bounds check proves them
# in-segment; t0 is scrubbed before mexit so no MRAM-derived value
# leaks back to the guest.
#
#   mlint examples/mcode/counter.s
mld t0, 0(zero)
addi t0, t0, 1
mst t0, 0(zero)
li t0, 0
mexit
