//! A preemptive multitasking OS kernel in ~90 lines of mcode.
//!
//! Two processes run at the *same virtual addresses* in different
//! address spaces; the timer interrupt is delegated to a context-switch
//! mroutine that saves/restores full register state with physical
//! accesses and swaps the ASID — no hardware scheduler, no kernel trap
//! path, just the building blocks the paper says vendors should expose
//! (§2.3) composed by software (§3).
//!
//! Run with: `cargo run --example preemptive_scheduler`

use metal_core::MetalBuilder;
use metal_ext::sched::{self, asid_of, write_pcb};
use metal_mem::devices::{map, Timer};
use metal_mem::tlb::Pte;
use metal_pipeline::state::{CoreConfig, TranslationMode};
use metal_pipeline::HaltReason;

const CODE_VA: u32 = 0x1_0000;
const DATA_VA: u32 = 0x2_0000;
const FRAMES: [(u32, u32); 2] = [(0x3_0000, 0x3_8000), (0x3_4000, 0x3_C000)];

fn main() {
    let mut core = sched::install(MetalBuilder::new())
        .build_core(CoreConfig {
            tlb: metal_mem::TlbConfig {
                entries: 64,
                keys: 16,
            },
            ..CoreConfig::default()
        })
        .expect("scheduler mroutines verify");
    core.state
        .bus
        .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));

    // Global identity mapping for the boot pages; per-ASID mappings for
    // each process's code and data — same VA, different frames.
    for i in 0..8 {
        let addr = i * 0x1000;
        core.state.tlb.install(
            addr,
            Pte::new(addr, Pte::V | Pte::R | Pte::W | Pte::X | Pte::G),
            0,
        );
    }
    for (pid, (code_pa, data_pa)) in FRAMES.iter().enumerate() {
        let asid = asid_of(pid as u32) as u16;
        core.state
            .tlb
            .install(CODE_VA, Pte::new(*code_pa, Pte::V | Pte::R | Pte::X), asid);
        core.state
            .tlb
            .install(DATA_VA, Pte::new(*data_pa, Pte::V | Pte::R | Pte::W), asid);
    }
    core.state.translation = TranslationMode::SoftTlb;

    // Process bodies: count at DATA_VA; process 0 exits at 3000.
    let p0 = format!(
        "li s0, {DATA_VA:#x}\nloop:\n lw t0, 0(s0)\n addi t0, t0, 1\n sw t0, 0(s0)\n \
         li t1, 3000\n blt t0, t1, loop\n mv a0, t0\n ebreak"
    );
    let p1 = format!(
        "li s0, {DATA_VA:#x}\nloop:\n lw t0, 0(s0)\n addi t0, t0, 1\n sw t0, 0(s0)\n j loop"
    );
    for (src, (code_pa, _)) in [&p0, &p1].iter().zip(FRAMES.iter()) {
        let words = metal_asm::assemble_at(src, CODE_VA).expect("process assembles");
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        core.state.bus.ram.load(*code_pa, &bytes).unwrap();
    }
    write_pcb(&mut core.state.bus.ram, 0, CODE_VA, 0);
    write_pcb(&mut core.state.bus.ram, 1, CODE_VA, 0);

    // Boot: enable the timer interrupt, 2000-cycle quantum (the full
    // register save/restore costs ~400 cycles of physical accesses, as a
    // real PALcode context switch would), enter pid 0.
    let boot = format!(
        "li t0, 1\n csrw mie, t0\n csrrsi zero, mstatus, 8\n li a0, 2000\n menter {}\n menter {}",
        sched::entries::INIT,
        sched::entries::START
    );
    let words = metal_asm::assemble_at(&boot, 0).unwrap();
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);

    let halt = core.run(10_000_000);
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 3000 }));

    let p0_count = core.state.bus.ram.read_u32(FRAMES[0].1).unwrap();
    let p1_count = core.state.bus.ram.read_u32(FRAMES[1].1).unwrap();
    println!("process 0 counted to {p0_count} (then exited)");
    println!("process 1 counted to {p1_count} (still runnable)");
    println!(
        "preemptions (timer interrupts delegated to the switch mroutine): {}",
        core.hooks.stats.delegated_interrupts
    );
    println!(
        "both processes used VA {DATA_VA:#x}; the ASID-tagged TLB kept them in\n\
         different frames with zero page-table work on each switch."
    );
}
