//! User-level interrupts (paper §3.4): a DPDK-style packet loop that
//! sleeps instead of polling.
//!
//! The NIC raises a level-triggered interrupt per packet; Metal's
//! delegated dispatcher upcalls straight into the *userspace* handler,
//! which reads the packet and acks the device — no kernel transition
//! anywhere on the path. The main loop meanwhile does useful work.
//!
//! Run with: `cargo run --example user_interrupts`

use metal_core::MetalBuilder;
use metal_ext::machine::run_guest;
use metal_ext::uintr;
use metal_mem::devices::{map, Nic};
use metal_pipeline::state::CoreConfig;
use metal_pipeline::HaltReason;

const GUEST: &str = r"
        li t0, 2               # enable the NIC line (bit 1)
        csrw mie, t0
        csrrsi zero, mstatus, 8
        la a0, handler
        menter 21              # register the userspace handler
        li s1, 0               # packets processed
        li s2, 0               # useful work done
        li s3, 0               # byte checksum of all packets
work:
        addi s2, s2, 1
        li t0, 4
        blt s1, t0, work       # until 4 packets have arrived
        menter 23              # a0 = deliveries (kit counter)
        slli a0, a0, 24
        or a0, a0, s3          # a0 = count<<24 | checksum
        ebreak
handler:
        li s5, 0xF0000200
        lw s6, 8(s5)           # first payload word
        add s3, s3, s6
        li s7, 1
        sw s7, 12(s5)          # ack: deasserts the line
        addi s1, s1, 1
        menter 22              # uret: unmask + resume the work loop
";

fn main() {
    let mut core = uintr::install(MetalBuilder::new(), map::NIC_IRQ)
        .build_core(CoreConfig::default())
        .expect("uintr mroutines verify");
    let (nic, handle) = Nic::new();
    core.state
        .bus
        .attach(map::NIC_BASE, map::WINDOW_LEN, Box::new(nic));

    // Four packets, 2000 cycles apart.
    for i in 0..4u64 {
        let payload = [(10 + i) as u8, 0, 0, 0];
        handle.schedule(1_000 + i * 2_000, payload.to_vec());
    }

    let halt = run_guest(&mut core, GUEST, 1_000_000);
    let Some(HaltReason::Ebreak { code }) = halt else {
        panic!("unexpected halt {halt:?}");
    };
    assert_eq!(code >> 24, 4, "four upcalls");
    assert_eq!(code & 0xFF_FFFF, 10 + 11 + 12 + 13, "payload checksum");

    println!("4 packets handled entirely in userspace (no kernel on the path).");
    println!("delivery latency per packet (arrival -> userspace ack):");
    for (arrival, acked) in handle.take_completions() {
        println!(
            "  cycle {arrival:>6} -> {acked:>6}  ({} cycles)",
            acked - arrival
        );
    }
    println!(
        "interrupts delegated by Metal: {}",
        core.hooks.stats.delegated_interrupts
    );
}
