//! User-defined privilege levels: the paper's §3.1 demo, end to end.
//!
//! Boots the mini kernel, drops to userspace through `kexit`, makes
//! system calls through the `kenter` gate (paper Figure 2), and shows a
//! privilege violation being caught: the user tries to invoke `kexit`
//! directly and lands in the kernel's violation handler instead.
//!
//! Run with: `cargo run --example custom_privilege`

use metal_ext::kernel::{self, VIOLATION_EXIT};
use metal_ext::machine::run_guest;
use metal_mem::devices::{map, Console};
use metal_pipeline::state::CoreConfig;
use metal_pipeline::HaltReason;

const HELLO_USER: &str = r"
user_main:
        # write metal + newline, one character at a time via sys_putc
        li a1, 'm'
        li a0, 0
        menter 0
        li a1, 'e'
        li a0, 0
        menter 0
        li a1, 't'
        li a0, 0
        menter 0
        li a1, 'a'
        li a0, 0
        menter 0
        li a1, 'l'
        li a0, 0
        menter 0
        li a1, 10
        li a0, 0
        menter 0
        # getpid and exit with it
        li a0, 1
        menter 0
        mv a1, a0
        li a0, 3
        menter 0
";

const EVIL_USER: &str = r"
user_main:
        # Try to 'return to userspace' without being the kernel: the
        # kexit mroutine checks m0 and diverts to the violation handler.
        la ra, pwned
        menter 1
pwned:
        li a1, 99
        li a0, 3
        menter 0
";

fn boot(user: &str) -> (Option<HaltReason>, Vec<u8>) {
    let mut core = kernel::builder()
        .build_core(CoreConfig::default())
        .expect("kernel mroutines verify");
    let (console, out) = Console::new();
    core.state
        .bus
        .attach(map::CONSOLE_BASE, map::WINDOW_LEN, Box::new(console));
    let halt = run_guest(&mut core, &kernel::system_source(user), 1_000_000);
    let bytes = out.lock().clone();
    (halt, bytes)
}

fn main() {
    println!("--- booting the mini kernel, dropping to ring 1 ---");
    let (halt, console) = boot(HELLO_USER);
    println!("console: {}", String::from_utf8_lossy(&console));
    println!("user exited with: {halt:?} (pid)");
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 1 }));

    println!("\n--- a user process tries to kexit directly ---");
    let (halt, _) = boot(EVIL_USER);
    match halt {
        Some(HaltReason::Ebreak { code }) if code == VIOLATION_EXIT => {
            println!("privilege violation caught by the kernel handler (exit {code:#x})");
        }
        other => panic!("the violation must be caught, got {other:?}"),
    }
}
