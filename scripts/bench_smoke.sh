#!/usr/bin/env bash
# Bench smoke test: run the core benches in fast mode (each body
# executes once, unmeasured) so CI catches benches that no longer
# assemble, run, or halt — without paying measurement time.
# Fails on any panic or nonzero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

export METAL_BENCH_FAST=1

for bench in sim_throughput transition; do
    echo "==> bench smoke: $bench"
    cargo bench -q -p metal-bench --bench "$bench"
done

echo "==> bench smoke passed"
