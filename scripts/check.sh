#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mlint (static analysis over example mcode)"
# Example mroutines must stay lint-clean under the full battery, with
# warnings promoted to failures.
for f in examples/mcode/*.s; do
    target/release/mlint --deny-warnings "$f"
done

if [[ "${CHECK_BENCH:-0}" == "1" ]]; then
    echo "==> bench smoke (CHECK_BENCH=1)"
    scripts/bench_smoke.sh
fi

if [[ "${CHECK_FUZZ:-0}" == "1" ]]; then
    echo "==> fuzz smoke (CHECK_FUZZ=1)"
    # A short real campaign: any divergence fails the gate.
    target/release/mfuzz --seconds 10 --jobs 2 --seed 1
    # The committed corpus must keep replaying bit-identically, and
    # every artifact must stay free of lint-soundness disagreements.
    for f in tests/corpus/*.s; do
        target/release/mfuzz --replay "$f" --lint
    done
fi

echo "==> all checks passed"
