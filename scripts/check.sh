#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${CHECK_BENCH:-0}" == "1" ]]; then
    echo "==> bench smoke (CHECK_BENCH=1)"
    scripts/bench_smoke.sh
fi

echo "==> all checks passed"
