#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mlint (static analysis over example mcode)"
# Example mroutines must stay lint-clean under the full battery, with
# warnings promoted to failures.
for f in examples/mcode/*.s; do
    target/release/mlint --deny-warnings "$f"
done

if [[ "${CHECK_BENCH:-0}" == "1" ]]; then
    echo "==> bench smoke (CHECK_BENCH=1)"
    scripts/bench_smoke.sh
fi

if [[ "${CHECK_FUZZ:-0}" == "1" ]]; then
    echo "==> fuzz smoke (CHECK_FUZZ=1)"
    # A short real campaign: any divergence fails the gate.
    target/release/mfuzz --seconds 10 --jobs 2 --seed 1
    # The committed corpus must keep replaying bit-identically, and
    # every artifact must stay free of lint-soundness disagreements.
    for f in tests/corpus/*.s; do
        target/release/mfuzz --replay "$f" --lint
    done
fi

if [[ "${CHECK_FAULT:-0}" == "1" ]]; then
    echo "==> fault-injection smoke (CHECK_FAULT=1)"
    # Fixed-seed SECDED campaign on the live-site workload: every
    # injected single-bit MRAM/MReg fault must be detected and
    # corrected, with zero silent data corruption, on both engines.
    for engine in pipeline interp; do
        target/release/mfault --seed 7 --cases 100 --jobs 2 --engine "$engine" \
            --workload loop --ecc secded --sites mram-code,mram-data,mreg \
            --kind transient --max-sdc 0 --min-corrected-pct 95
    done
    # The harness itself must not perturb state.
    target/release/mfault --seed 7 --cases 25 --zero-fault --workload fuzz
fi

echo "==> all checks passed"
