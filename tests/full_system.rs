//! Cross-crate integration: a complete Metal system running a miniature
//! OS with several architectural extensions installed side by side.

mod common;

use common::run_system_on;
use metal_core::Metal;
use metal_ext::kernel;
use metal_ext::machine::run_guest;
use metal_mem::devices::map;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, Engine, HaltReason, Interp};

/// The mini-OS boot scenario, written once against [`Engine`] and run
/// on both the pipelined core and the reference interpreter.
fn mini_os_on<E: Engine<Hooks = Metal>>() {
    let user = r"
user_main:
        li a1, '>'
        li a0, 0
        menter 0            # putc
        li a0, 2
        menter 0            # yield
        li a0, 1
        menter 0            # getpid
        mv a1, a0
        li a0, 3
        menter 0            # exit(pid)
    ";
    let booted = run_system_on::<E>(
        kernel::builder(),
        &kernel::system_source(user),
        1_000_000,
        false,
    );
    assert_eq!(
        booted.halt,
        Some(HaltReason::Ebreak { code: 1 }),
        "engine {}",
        E::name()
    );
    assert_eq!(booted.console, b">", "engine {}", E::name());
}

#[test]
fn mini_os_boots_and_serves_syscalls() {
    mini_os_on::<Core<Metal>>();
    mini_os_on::<Interp<Metal>>();
}

#[test]
fn all_extension_kits_coexist_in_one_mram() {
    // Every §3 application installed into a single Metal instance: the
    // entry-number and MRAM-data partitions must not collide, and the
    // whole image must fit the default MRAM.
    let builder = metal_ext::privilege::install(metal_core::MetalBuilder::new());
    let builder = metal_ext::pagetable::install(builder);
    let builder = metal_ext::stm::install(builder);
    let builder = metal_ext::uintr::install(builder, map::NIC_IRQ);
    let builder = metal_ext::isolation::install(builder);
    let builder = metal_ext::shadowstack::install(builder);
    let builder = metal_ext::capability::install(builder);
    let builder = metal_ext::enclave::install(builder);
    let builder = metal_ext::sched::install(builder);
    let builder = metal_ext::vmm::install(builder);
    let core = builder
        .build_core(CoreConfig::default())
        .expect("all kits fit together");
    let installed = core.hooks.mram.routines().count();
    assert!(
        installed >= 35,
        "expected a full MRAM, got {installed} routines"
    );
    assert!(
        core.hooks.mram.code_free() > 0,
        "the default MRAM should still have headroom"
    );
}

#[test]
fn combined_kits_run_a_mixed_workload() {
    // STM + capability + shadow stack in one program.
    let builder = metal_ext::stm::install(metal_core::MetalBuilder::new());
    let builder = metal_ext::capability::install(builder);
    let mut core = builder
        .build_core(CoreConfig::default())
        .expect("kits build");
    core.hooks.mram.data_mut()[1028..1032].copy_from_slice(&0x30_0000u32.to_le_bytes());
    let program = r"
        # Mint a capability over a buffer and store through it.
        la a0, viol
        menter 36
        li a0, 0x40000
        li a1, 64
        li a2, 3
        menter 32           # cap 0
        li a1, 0
        li a2, 21
        menter 34           # cap store
        # Transactionally double the word the capability wrote.
        li a0, 0
        menter 12           # tstart
        li s0, 0x40000
        lw t3, 0(s0)
        slli t3, t3, 1
        sw t3, 0(s0)
        menter 15           # tcommit
        beqz a0, viol
        lw a0, 0(s0)        # 42
        ebreak
    viol:
        li a0, 0xBAD
        ebreak
    ";
    let halt = run_guest(&mut core, program, 10_000_000);
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 42 }));
}

#[test]
fn timer_and_console_devices_compose() {
    // The kernel boots with devices attached; the user reads the cycle
    // counter via the timer MMIO and prints a tick mark.
    let user = r"
user_main:
        li s0, 0xF0000100
        lw t0, 0(s0)        # cycle lo
        li a1, '*'
        li a0, 0
        menter 0
        li a1, 0
        li a0, 3
        menter 0
    ";
    let booted = run_system_on::<Core<Metal>>(
        kernel::builder(),
        &kernel::system_source(user),
        1_000_000,
        true,
    );
    assert_eq!(booted.halt, Some(HaltReason::Ebreak { code: 0 }));
    assert_eq!(booted.console, b"*");
}

#[test]
fn failure_injection_mram_overflow() {
    // A routine too large for a small MRAM is refused at build time.
    let big: String = "addi a0, a0, 1\n".repeat(300) + "mexit";
    let err = metal_core::MetalBuilder::new()
        .config(metal_core::MetalConfig {
            mram: metal_core::MramConfig {
                code_bytes: 512,
                data_bytes: 64,
                fetch_latency: 1,
            },
            ..metal_core::MetalConfig::default()
        })
        .routine(0, "big", &big)
        .build_core(CoreConfig::default())
        .err()
        .expect("overflow must be detected");
    assert!(matches!(err, metal_core::MetalError::CodeOverflow { .. }));
}

#[test]
fn failure_injection_runaway_intercept_chain_is_contained() {
    // A handler that re-executes the intercepted instruction *without*
    // skipping it, with the rule still armed in its own layer, would
    // loop; single-layer semantics prevent it (no interception inside
    // Metal mode at the same layer), so this terminates.
    let handler = r"
        rmr t0, m31
        addi t0, t0, 4
        wmr m31, t0
        sw a1, 0(s0)        # NOT intercepted again (same layer)
        mexit
    ";
    let mut core = metal_core::MetalBuilder::new()
        .routine(
            1,
            "arm",
            r"
            li t0, 0x23
            li t1, 5            # entry 2, enabled
            mintercept t0, t1
            li t0, 1
            wmr mstatus, t0
            mexit
            ",
        )
        .routine(2, "handler", handler)
        .build_core(CoreConfig::default())
        .unwrap();
    let halt = run_guest(
        &mut core,
        "li s0, 0x4000\n li a1, 9\n menter 1\n sw a1, 0(s0)\n lw a0, 0(s0)\n ebreak",
        1_000_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 9 }));
    assert_eq!(core.hooks.stats.intercepts, 1);
}

#[test]
fn menter_is_unprivileged_by_design() {
    // Paper §2: "menter is not a privileged instruction in the
    // traditional sense". Even code at the lowest software-defined ring
    // may invoke an mroutine; policy lives in the mroutine.
    let builder = metal_ext::privilege::install(metal_core::MetalBuilder::new());
    let mut core = builder.build_core(CoreConfig::default()).unwrap();
    let halt = run_guest(
        &mut core,
        r"
        la a0, kfault
        menter 2
        la ra, user
        menter 1            # drop to ring 1
    kfault:
        li a0, 0xdead
        ebreak
    user:
        menter 3            # ring_get from userspace: allowed
        ebreak
        ",
        100_000,
    );
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 1 }));
}
