//! Property tests for engine snapshot/restore: rewinding a machine and
//! rerunning must be bit-identical — same architectural state, same
//! metrics, same emitted trace events. This is the contract `mfuzz`
//! leans on to reset cases in microseconds instead of rebuilding
//! machines.

mod common;

use common::{assemble_flat, CORE_LIMIT, INTERP_LIMIT};
use metal_core::{Metal, MetalBuilder};
use metal_fuzz::grammar::{rand_guest, rand_routine};
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, Engine, HaltReason, Interp};
use metal_trace::{Event, MetricsSnapshot, TraceConfig, TraceHandle};
use metal_util::Rng;

/// Everything a rerun must reproduce exactly.
#[derive(Debug, PartialEq)]
struct RunRecord {
    halt: Option<HaltReason>,
    regs: [u32; 32],
    metrics: MetricsSnapshot,
    events: Vec<Event>,
    mram_data: Vec<u8>,
    mregs: Vec<u32>,
}

/// Runs from the current machine state to halt under a fresh trace
/// (the snapshot deliberately does not capture the trace handle, so
/// each observation installs its own).
fn run_and_record<E: Engine<Hooks = Metal>>(engine: &mut E, limit: u64) -> RunRecord {
    engine
        .state_mut()
        .set_trace(TraceHandle::enabled(TraceConfig {
            capacity: 1 << 16,
            ..TraceConfig::default()
        }));
    let halt = engine.run(limit);
    RunRecord {
        halt,
        regs: engine.state().regs.snapshot(),
        metrics: engine.metrics_snapshot(),
        events: engine.state().trace.events(),
        mram_data: engine.hooks().mram.data().to_vec(),
        mregs: (0..32).map(|m| engine.hooks().mregs.get(m)).collect(),
    }
}

/// Snapshot at the load point, run to halt, restore, run again: the
/// two observations must match bit for bit, on either engine.
fn roundtrip_from_load<E: Engine<Hooks = Metal>>(seed: u64, limit: u64) {
    let mut rng = Rng::new(seed);
    let r0 = rand_routine(&mut rng);
    let r1 = rand_routine(&mut rng);
    let guest = rand_guest(&mut rng);
    let program = assemble_flat(&guest);
    let mut engine = MetalBuilder::new()
        .routine(0, "r0", &r0)
        .routine(1, "r1", &r1)
        .build_engine::<E>(CoreConfig::default())
        .expect("machine builds");
    engine.load_segments([(0u32, program.as_slice())], 0);
    let snap = engine.snapshot();
    let first = run_and_record(&mut engine, limit);
    engine.restore(&snap);
    let second = run_and_record(&mut engine, limit);
    assert_eq!(
        first, second,
        "seed {seed}: restore+rerun not bit-identical\nguest:\n{guest}"
    );
}

#[test]
fn core_restore_rerun_is_bit_identical() {
    for seed in 0..24u64 {
        roundtrip_from_load::<Core<Metal>>(seed, CORE_LIMIT);
    }
}

#[test]
fn interp_restore_rerun_is_bit_identical() {
    for seed in 0..24u64 {
        roundtrip_from_load::<Interp<Metal>>(seed, INTERP_LIMIT);
    }
}

#[test]
fn interp_mid_run_snapshot_resumes_identically() {
    // The interpreter executes serially, so a snapshot is legal at any
    // instruction boundary: run k steps, snapshot, finish, restore,
    // finish again — the two tails must agree.
    for seed in 0..12u64 {
        let mut rng = Rng::new(0xABCD_0000 | seed);
        let r0 = rand_routine(&mut rng);
        let r1 = rand_routine(&mut rng);
        let guest = rand_guest(&mut rng);
        let program = assemble_flat(&guest);
        let mut engine = MetalBuilder::new()
            .routine(0, "r0", &r0)
            .routine(1, "r1", &r1)
            .build_engine::<Interp<Metal>>(CoreConfig::default())
            .expect("machine builds");
        engine.load_segments([(0u32, program.as_slice())], 0);
        let k = rng.range_u32(1, 12) as u64;
        if engine.run(k).is_some() {
            // Short program already halted — nothing mid-run to probe.
            continue;
        }
        let snap = engine.snapshot();
        let first = run_and_record(&mut engine, INTERP_LIMIT);
        engine.restore(&snap);
        let second = run_and_record(&mut engine, INTERP_LIMIT);
        assert_eq!(
            first, second,
            "seed {seed}: mid-run restore diverged\nguest:\n{guest}"
        );
    }
}

#[test]
fn restore_discards_later_writes() {
    // A snapshot taken before a run protects memory, CSRs, Metal
    // registers, and MRAM data from everything the run did.
    let program = assemble_flat(
        "li a0, 21\nli t0, 0x1234\ncsrw mscratch, t0\nmenter 7\nsw a0, 64(zero)\nebreak",
    );
    let mut core = MetalBuilder::new()
        .routine(
            7,
            "double",
            "slli a0, a0, 1\nwmr m5, a0\nmst a0, 4(zero)\nmexit",
        )
        .build_engine::<Core<Metal>>(CoreConfig::default())
        .expect("machine builds");
    core.load_segments([(0u32, program.as_slice())], 0);
    let snap = core.snapshot();
    let halt = core.run(CORE_LIMIT);
    assert_eq!(halt, Some(HaltReason::Ebreak { code: 42 }));
    assert_eq!(core.hooks().mregs.get(5), 42);
    core.restore(&snap);
    assert_eq!(core.state().csr.mscratch, 0, "CSR write survived restore");
    assert_eq!(core.hooks().mregs.get(5), 0, "mreg write survived restore");
    assert_eq!(
        core.hooks().mram.data()[4..8],
        [0; 4],
        "MRAM data write survived restore"
    );
    assert_eq!(
        core.state_mut().bus.read_u32(64).expect("ram readable"),
        0,
        "RAM write survived restore"
    );
    assert_eq!(
        core.state().perf.cycles,
        0,
        "perf counters survived restore"
    );
    // And the machine runs again to the same result.
    assert_eq!(core.run(CORE_LIMIT), Some(HaltReason::Ebreak { code: 42 }));
}

#[test]
fn core_snapshot_requires_quiescence() {
    // The pipelined core snapshots only at retired-instruction
    // boundaries: with instructions in flight, the inter-stage latches
    // hold state EngineSnapshot does not capture, so the engine must
    // refuse rather than silently drop work.
    let program = assemble_flat("li a0, 1\nadd a0, a0, a0\nadd a0, a0, a0\nadd a0, a0, a0\nebreak");
    let mut core = MetalBuilder::new()
        .routine(0, "nopr", "mexit")
        .build_engine::<Core<Metal>>(CoreConfig::default())
        .expect("machine builds");
    core.load_segments([(0u32, program.as_slice())], 0);
    assert!(core.is_quiescent(), "reset state is a legal boundary");
    let _ = core.snapshot();
    // A few raw cycles leave younger instructions mid-pipeline.
    assert!(core.run(3).is_none(), "program must still be running");
    assert!(!core.is_quiescent(), "instructions should be in flight");
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = core.snapshot();
    }))
    .is_err();
    assert!(panicked, "mid-flight snapshot must panic");
}

#[test]
fn core_split_stepping_matches_uninterrupted_run() {
    // The campaign harness rewinds to a pristine snapshot, steps to an
    // injection point with step_insns, and keeps running. step_insns
    // stops at a retirement boundary but deliberately leaves younger
    // instructions in flight (no drain), so the split run must be
    // tick-for-tick identical to an uninterrupted one — and such a
    // boundary is NOT a legal snapshot point.
    let program =
        assemble_flat("li a0, 5\nloop:\naddi a0, a0, -1\nbnez a0, loop\nli a0, 33\nebreak");
    let mut core = MetalBuilder::new()
        .routine(0, "nopr", "mexit")
        .build_engine::<Core<Metal>>(CoreConfig::default())
        .expect("machine builds");
    core.load_segments([(0u32, program.as_slice())], 0);
    let snap = core.snapshot();
    let halt = core.run_fuel(CORE_LIMIT);
    assert_eq!(halt, HaltReason::Ebreak { code: 33 });
    let (cycles, instret) = (core.state().perf.cycles, core.state().perf.instret);

    core.restore(&snap);
    core.step_insns(3);
    assert!(
        !core.is_quiescent(),
        "mid-run step_insns boundary should have younger insns in flight"
    );
    assert_eq!(core.run_fuel(CORE_LIMIT), halt);
    assert_eq!(
        (core.state().perf.cycles, core.state().perf.instret),
        (cycles, instret),
        "split-stepped run diverged from the uninterrupted run"
    );
    // Halt is a quiescent point: the snapshot there is legal.
    assert!(core.is_quiescent());
    let _ = core.snapshot();
}
