//! Golden lint verdicts over the committed fuzz corpus and the
//! known-leaky / known-clean mroutine pair.
//!
//! The committed artifacts under `tests/corpus/` were produced by real
//! campaigns and replay divergence-free, so the analyzer must agree
//! they are installable: no privilege or bounds denial anywhere. The
//! leaky/clean pair pins the taint analysis: one secret-bearing
//! register left live at `mexit` is flagged, and scrubbing it is all
//! it takes to pass.

use metal_fuzz::artifact;
use metal_fuzz::lint::lint_case;
use metal_lint::{Check, Level, LintConfig, MRAM_BASE};

fn corpus_cases() -> Vec<(String, metal_fuzz::FuzzCase)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "s"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let content = std::fs::read_to_string(&path).unwrap();
            let (case, _expect) =
                artifact::parse(&content).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            (name, case)
        })
        .collect()
}

/// Every committed artifact lints; no unit earns a privilege or bounds
/// denial (they all installed and ran to completion).
#[test]
fn committed_corpus_lints_installable() {
    let cases = corpus_cases();
    assert!(cases.len() >= 4, "expected the committed corpus");
    for (name, case) in &cases {
        let lint = lint_case(case).unwrap_or_else(|e| panic!("{name}: {e}"));
        for unit in lint.routines.iter().chain(std::iter::once(&lint.guest)) {
            for d in &unit.report.diagnostics {
                let blocking =
                    d.level == Level::Deny && matches!(d.check, Check::Privilege | Check::Bounds);
                assert!(
                    !blocking,
                    "{name}: unit `{}` denied: {}",
                    unit.name, d.message
                );
            }
        }
    }
}

/// The corpus covers interception; the analyzer's constant folding
/// must recover at least one statically-armed intercept from it.
#[test]
fn corpus_intercept_arm_is_constant_folded() {
    let arms: usize = corpus_cases()
        .iter()
        .filter_map(|(_, case)| lint_case(case).ok())
        .flat_map(|lint| {
            lint.routines
                .iter()
                .map(|u| u.report.intercepts.len())
                .collect::<Vec<_>>()
        })
        .sum();
    assert!(arms >= 1, "no statically-resolved intercept arm in corpus");
}

/// Known-leaky vs known-clean: the pair differs only by a scrub of the
/// secret-bearing register before `mexit`.
#[test]
fn leaky_and_clean_pair_golden() {
    let config = LintConfig::mroutine(MRAM_BASE);
    let leaky = metal_lint::lint_source("rmr t0, m0\nmexit", &config).unwrap();
    let flagged = leaky
        .iter()
        .find(|d| d.check == Check::Leak)
        .expect("leak diagnostic");
    assert!(flagged.message.contains("t0"), "{flagged:?}");
    assert_eq!(flagged.line, Some(2), "anchored at the mexit: {flagged:?}");

    let clean = metal_lint::lint_source("rmr t0, m0\nli t0, 0\nmexit", &config).unwrap();
    assert!(clean.iter().all(|d| d.check != Check::Leak), "{clean:?}");
}
