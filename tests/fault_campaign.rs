//! End-to-end properties of `mfault` campaigns: bit-reproducibility
//! across runs and `--jobs`, harness transparency (zero faults ⇒ zero
//! perturbation), and the headline robustness result — with SECDED
//! and the mcode recovery mroutine, injected single-bit MRAM/MReg
//! faults on a live workload are detected and corrected with zero
//! silent data corruption.

use metal_core::EccMode;
use metal_faultsim::campaign::{
    run, CampaignConfig, Classification, EngineChoice, KindChoice, WorkloadKind,
};
use metal_trace::FaultSite;

fn smoke_config() -> CampaignConfig {
    CampaignConfig {
        seed: 0xFA_017,
        cases: 48,
        jobs: 1,
        ecc: EccMode::Secded,
        sites: vec![FaultSite::MramCode, FaultSite::MramData, FaultSite::Mreg],
        kind: KindChoice::Transient,
        engine: EngineChoice::Pipeline,
        workload: WorkloadKind::Loop,
        recover: true,
        zero_fault: false,
    }
}

#[test]
fn campaign_is_deterministic_across_jobs() {
    let mut cfg = smoke_config();
    let baseline = run(&cfg).to_json(&cfg).to_string_compact();
    for jobs in [1, 4] {
        cfg.jobs = jobs;
        let again = run(&cfg).to_json(&cfg).to_string_compact();
        assert_eq!(baseline, again, "campaign diverged at --jobs {jobs}");
    }
}

#[test]
fn zero_fault_campaign_is_state_identical_on_both_engines() {
    for (engine, workload) in [
        (EngineChoice::Pipeline, WorkloadKind::Loop),
        (EngineChoice::Pipeline, WorkloadKind::Fuzz),
        (EngineChoice::Interp, WorkloadKind::Loop),
        (EngineChoice::Interp, WorkloadKind::Fuzz),
    ] {
        let cfg = CampaignConfig {
            cases: 16,
            engine,
            workload,
            zero_fault: true,
            ..smoke_config()
        };
        let report = run(&cfg);
        assert_eq!(
            report.zero_fault_divergences,
            0,
            "snapshot/rerun perturbed state on {} / {}",
            engine.label(),
            workload.label()
        );
        // The detection hardware must also stay silent on clean state.
        let mchecks: u64 = report.outcomes.iter().map(|o| o.machine_checks).sum();
        assert_eq!(mchecks, 0, "spurious machine checks on clean runs");
    }
}

#[test]
fn secded_smoke_campaign_corrects_faults_without_sdc() {
    for engine in [EngineChoice::Pipeline, EngineChoice::Interp] {
        let cfg = CampaignConfig {
            cases: 100,
            engine,
            ..smoke_config()
        };
        let report = run(&cfg);
        assert_eq!(
            report.count(Classification::Sdc),
            0,
            "SDC under SECDED + recovery on {}",
            engine.label()
        );
        assert!(
            report.corrected_pct() >= 95.0,
            "only {:.1}% corrected on {}",
            report.corrected_pct(),
            engine.label()
        );
    }
}

#[test]
fn parity_mreg_faults_recover_by_rollback() {
    // Parity detects but cannot locate the bit; MRAM words still scrub
    // from the golden copy (retry), while Metal register faults must
    // go through mabort + checkpoint rollback.
    let cfg = CampaignConfig {
        cases: 60,
        ecc: EccMode::Parity,
        ..smoke_config()
    };
    let report = run(&cfg);
    assert_eq!(report.count(Classification::Sdc), 0);
    assert!(report.corrected_pct() >= 95.0);
    let mreg_rollbacks = report
        .outcomes
        .iter()
        .filter(|o| o.site == Some(FaultSite::Mreg) && o.class == Classification::CorrectedRollback)
        .count();
    assert!(
        mreg_rollbacks > 0,
        "expected at least one rollback-recovered mreg parity fault"
    );
    for o in &report.outcomes {
        if o.site == Some(FaultSite::Mreg) {
            assert_eq!(
                o.class,
                Classification::CorrectedRollback,
                "parity cannot scrub a register in place (case {})",
                o.index
            );
        }
    }
}

#[test]
fn without_ecc_nothing_is_detected() {
    let cfg = CampaignConfig {
        cases: 40,
        ecc: EccMode::None,
        ..smoke_config()
    };
    let report = run(&cfg);
    let mchecks: u64 = report.outcomes.iter().map(|o| o.machine_checks).sum();
    assert_eq!(mchecks, 0, "machine checks with detection disabled");
    for o in &report.outcomes {
        assert!(
            matches!(o.class, Classification::Masked | Classification::Sdc),
            "case {} classified {:?} without detection hardware",
            o.index,
            o.class
        );
    }
    // A live workload must expose at least some of the corruption.
    assert!(
        report.count(Classification::Sdc) > 0,
        "no-ECC campaign surfaced no SDC at all"
    );
}

#[test]
fn stuck_at_faults_are_corrected_on_live_sites() {
    let cfg = CampaignConfig {
        cases: 40,
        kind: KindChoice::Stuck,
        ..smoke_config()
    };
    let report = run(&cfg);
    assert_eq!(report.count(Classification::Sdc), 0);
    assert!(report.corrected_pct() >= 95.0);
}
