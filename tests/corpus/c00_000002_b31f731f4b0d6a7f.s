# mfuzz artifact v1
# seed 0xb31f731f4b0d6a7f
config softtlb 1
delegate 12 3
delegate 13 3
delegate 15 3
routine 0 r0
| wmr m7, a0
| mexit
routine 1 r1
| mst a0, 12(zero)
| mexit
routine 3 refill
| rmr t0, mbadaddr
| srli t0, t0, 12
| slli t0, t0, 12
| ori t1, t0, 15
| mtlbw t0, t1
| mexit
guest
| li a0, 218
| li a1, -917
| li s0, 12288
| menter 0
| addi a0, a0, -396
| csrw mscratch, a0
| addi a0, a0, -371
| addi a0, a0, 397
| csrw mscratch, a0
| li t3, 5
| fuzzloop:
| addi a0, a0, 10
| addi t3, t3, -1
| bnez t3, fuzzloop
| xor a0, a0, a1
| csrw mscratch, a0
| addi a0, a0, -136
| ebreak
expect halt ebreak 873
expect instret 34
expect reg 6 0x0000000f
expect reg 8 0x00003000
expect reg 10 0x00000369
expect reg 11 0xfffffc6b
expect mreg 7 0x000000da
expect mreg 31 0x00000014
expect mramsum 0xb93a0c83ce3b6325
