# mfuzz artifact v1
# seed 0xa759ea27d4727622
config softtlb 0
routine 0 r0
| rmr t0, m1
| add a0, a0, t0
| wmr m7, a0
| rmr t0, m2
| add a0, a0, t0
| rmr t0, m6
| add a0, a0, t0
| rmr t0, m6
| add a0, a0, t0
| mexit
routine 1 r1
| mld t0, 4(zero)
| add a0, a0, t0
| wmr m6, a0
| wmr m1, a0
| wmr m5, a0
| addi a0, a0, -35
| slli a0, a0, 1
| addi a0, a0, -5
| mexit
guest
| li a0, 0
| li s1, 3
| loop:
| slot:
| addi a0, a0, 90
| la t0, slot
| li t1, 4193584403
| sw t1, 0(t0)
| addi s1, s1, -1
| bnez s1, loop
| ebreak
expect halt ebreak 4294967192
expect instret 26
expect reg 5 0x00000008
expect reg 6 0xf9f50513
expect reg 10 0xffffff98
expect mramsum 0xb93a0c83ce3b6325
