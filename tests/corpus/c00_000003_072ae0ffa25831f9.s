# mfuzz artifact v1
# seed 0x072ae0ffa25831f9
config softtlb 0
routine 0 r0
| mld t0, 48(zero)
| add a0, a0, t0
| mst a0, 8(zero)
| rmr t0, m6
| add a0, a0, t0
| mexit
routine 1 r1
| rmr t0, m4
| add a0, a0, t0
| slli a0, a0, 1
| wmr m1, a0
| mexit
routine 4 arm
| li t0, 0x0F
| li t1, 11
| mintercept t0, t1
| li t0, 1
| wmr mstatus, t0
| mexit
routine 5 on_fence
| mld t0, 32(zero)
| addi t0, t0, 1
| mst t0, 32(zero)
| rmr t0, m31
| addi t0, t0, 4
| wmr m31, t0
| mexit
guest
| li a0, -625
| li a1, 734
| li s0, 12288
| menter 4
| add a1, a1, a0
| add a1, a1, a0
| lbu t2, 0(s0)
| xor a0, a0, t2
| sb a0, 41(s0)
| menter 1
| menter 1
| lbu t2, 39(s0)
| xor a0, a0, t2
| xor a0, a0, a1
| fence
| addi a0, a0, -348
| fence
| sw a0, 40(s0)
| ebreak
expect halt ebreak 2660
expect instret 39
expect reg 5 0x00000048
expect reg 6 0x0000000b
expect reg 8 0x00003000
expect reg 10 0x00000a64
expect reg 11 0xfffffdfc
expect mreg 1 0xfffff63c
expect mreg 31 0x00000048
expect mramsum 0x6e4c05848a6fe227
