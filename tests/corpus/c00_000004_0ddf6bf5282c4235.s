# mfuzz artifact v1
# seed 0x0ddf6bf5282c4235
config softtlb 0
routine 0 r0
| mst a0, 28(zero)
| xor a0, a0, a1
| wmr m3, a0
| mexit
routine 1 r1
| slli a0, a0, 1
| rmr t0, m5
| add a0, a0, t0
| mst a0, 60(zero)
| xor a0, a0, a1
| addi a0, a0, 9
| xor a0, a0, a1
| mexit
routine 6 sys
| li t0, 12320
| mpld t1, t0
| add a0, a0, t1
| li t0, 12304
| mpld t1, t0
| add a0, a0, t1
| li t0, 12288
| mtlbp t1, t0
| add a0, a0, t1
| li t0, 12300
| mpst a0, t0
| mexit
guest
| li a0, 527
| li a1, 376
| li s0, 12288
| xor a0, a0, a1
| lbu t2, 1(s0)
| xor a0, a0, t2
| addi a0, a0, 403
| menter 6
| addi a0, a0, 255
| addi a0, a0, -304
| menter 6
| sb a0, 5(s0)
| addi a0, a0, 428
| lbu t2, 50(s0)
| xor a0, a0, t2
| ebreak
expect halt fatal
expect instret 22
expect reg 5 0x0000300c
expect reg 8 0x00003000
expect reg 10 0x0000050a
expect reg 11 0x00000178
expect mreg 31 0x00000024
expect mramsum 0xb93a0c83ce3b6325
