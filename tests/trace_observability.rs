//! The observability layer's two contracts, tested end to end:
//!
//! 1. **Zero perturbation** — running with full tracing enabled (and
//!    the `TracingHooks` decorator installed) yields bit-identical
//!    architectural state and identical cycle counts to the untraced
//!    run. Observation must never change what is observed.
//! 2. **Well-formed export** — the Chrome trace-event JSON parses, its
//!    timestamps are monotonically non-decreasing, duration events are
//!    balanced, and the transition events the Metal workload generates
//!    actually appear.

use metal_core::{Metal, MetalBuilder};
use metal_isa::reg::Reg;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, TracingHooks};
use metal_trace::{Detail, TraceConfig, TraceHandle};
use metal_util::{Json, Rng};

/// A guest that exercises every event source: mroutine calls (MRAM
/// fetch + data + transitions), arithmetic, loads/stores (D-cache),
/// and branches.
fn guest(rng: &mut Rng) -> String {
    let steps = rng.range_usize(4, 24);
    let mut body = String::new();
    for _ in 0..steps {
        let step = match rng.range_u32(0, 6) {
            0 => format!("addi a0, a0, {}", rng.range_i32(-512, 512)),
            1 => "menter 0".to_owned(),
            2 => "menter 1".to_owned(),
            3 => format!("sw a0, {}(s0)", rng.range_u32(0, 16) * 4),
            4 => format!("lw t0, {}(s0)\n add a0, a0, t0", rng.range_u32(0, 16) * 4),
            _ => "add a1, a1, a0".to_owned(),
        };
        body.push_str(&step);
        body.push('\n');
    }
    format!("li s0, 0x8000\nli a0, 7\nli a1, 11\n{body}ebreak")
}

fn build_metal() -> Metal {
    let (metal, _, _) = MetalBuilder::new()
        .routine(
            0,
            "bump",
            "rmr t0, m0\n addi t0, t0, 1\n wmr m0, t0\n mexit",
        )
        .routine(1, "store", "mst a0, 0(zero)\n mld t0, 0(zero)\n mexit")
        .build()
        .expect("routines verify");
    metal
}

fn run(metal: Metal, image: &[u8], trace: Option<TraceHandle>) -> Core<TracingHooks<Metal>> {
    let mut core = Core::new(CoreConfig::default(), TracingHooks::new(metal));
    if let Some(handle) = trace {
        core.state.set_trace(handle);
    }
    core.load_segments([(0u32, image)], 0);
    core.run(5_000_000);
    core
}

/// Tracing (full detail, decorator installed) never perturbs the
/// simulation: identical registers, memory, cycle counts, retirement
/// counts, and Metal-side state.
#[test]
fn tracing_is_zero_perturbation() {
    let mut rng = Rng::new(0x0b5e_0001);
    for case in 0..24 {
        let src = guest(&mut rng);
        let words = metal_asm::assemble_at(&src, 0).expect("guest assembles");
        let image: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();

        let plain = run(build_metal(), &image, None);
        let traced = run(
            build_metal(),
            &image,
            Some(TraceHandle::enabled(TraceConfig::default())),
        );

        assert_eq!(
            plain.state.perf.cycles, traced.state.perf.cycles,
            "case {case}: cycle counts diverged\nguest:\n{src}"
        );
        assert_eq!(
            plain.state.perf.instret, traced.state.perf.instret,
            "case {case}: retirement counts diverged"
        );
        assert_eq!(
            plain.state.regs.snapshot(),
            traced.state.regs.snapshot(),
            "case {case}: registers diverged\nguest:\n{src}"
        );
        assert_eq!(plain.state.halted, traced.state.halted, "case {case}");
        let dump = |core: &Core<TracingHooks<Metal>>| {
            core.state.bus.ram.dump(0x8000, 64 * 4).unwrap().to_vec()
        };
        assert_eq!(dump(&plain), dump(&traced), "case {case}: memory diverged");
        assert_eq!(
            plain.hooks.inner.mram.data(),
            traced.hooks.inner.mram.data(),
            "case {case}: MRAM diverged"
        );
        assert_eq!(
            plain.hooks.inner.stats, traced.hooks.inner.stats,
            "case {case}: Metal stats diverged"
        );
        // The traced run actually recorded something.
        assert!(
            !traced.state.trace.events().is_empty(),
            "case {case}: no events recorded"
        );
    }
}

/// The exported Chrome trace parses as JSON, timestamps never go
/// backwards, B/E pairs balance, and the workload's transitions
/// appear as menter/mexit-derived events.
#[test]
fn chrome_export_is_well_formed() {
    let mut rng = Rng::new(0x0b5e_0002);
    for case in 0..12 {
        let src = guest(&mut rng);
        let words = metal_asm::assemble_at(&src, 0).expect("guest assembles");
        let image: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let detail = if rng.chance() {
            Detail::Full
        } else {
            Detail::Transitions
        };
        let core = run(
            build_metal(),
            &image,
            Some(TraceHandle::enabled(TraceConfig {
                detail,
                ..TraceConfig::default()
            })),
        );

        let text = core.state.trace.export_chrome();
        let json = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: export does not parse: {e:?}"));
        let events = json
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");

        let mut last_ts = f64::NEG_INFINITY;
        let mut depth = 0i64;
        let mut names = std::collections::BTreeSet::new();
        for ev in events {
            let ts = ev.get("ts").and_then(Json::as_f64).expect("ts field");
            assert!(
                ts >= last_ts,
                "case {case}: timestamp went backwards: {ts} < {last_ts}"
            );
            last_ts = ts;
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
            match ph {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "case {case}: unmatched E event");
                }
                _ => {}
            }
            if let Some(name) = ev.get("name").and_then(Json::as_str) {
                names.insert(name.to_owned());
            }
        }
        assert_eq!(depth, 0, "case {case}: unbalanced B/E events");
        // Both installed mroutines were called at least once in most
        // guests; require at least one transition span.
        if src.contains("menter") {
            assert!(
                names.iter().any(|n| n.starts_with("mroutine[")),
                "case {case}: no transition spans in {names:?}"
            );
        }
    }
}

/// The unified metrics snapshot carries everything an experiment
/// needs: cycle/instruction counts, the stall breakdown, hit rates,
/// and per-mroutine transition histograms — and survives a JSON
/// round trip.
#[test]
fn metrics_snapshot_is_complete() {
    let src = "li s0, 0x8000\nli s1, 40\nloop:\n menter 0\n sw s1, 0(s0)\n lw t1, 0(s0)\n addi s1, s1, -1\n bnez s1, loop\n ebreak";
    let words = metal_asm::assemble_at(src, 0).expect("guest assembles");
    let image: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    let core = run(
        build_metal(),
        &image,
        Some(TraceHandle::enabled(TraceConfig::default())),
    );
    assert_eq!(core.state.regs.get(Reg::S1), 0);

    let mut snap = core.state.metrics_snapshot();
    core.hooks.inner.publish_metrics(&mut snap);

    assert_eq!(snap.counter("cycles"), Some(core.state.perf.cycles));
    assert_eq!(snap.counter("instret"), Some(core.state.perf.instret));
    for key in [
        "stall.fetch",
        "stall.mem",
        "stall.loaduse",
        "stall.ex",
        "flush.cycles",
        "icache.accesses",
        "dcache.accesses",
        "metal.menters",
        "metal.mexits",
    ] {
        assert!(snap.counter(key).is_some(), "missing counter {key}");
    }
    assert!(snap.gauge("icache.hit_rate").is_some());
    assert!(snap.gauge("dcache.hit_rate").is_some());
    assert_eq!(snap.counter("metal.menters"), Some(40));
    let latency = snap
        .hist("transition.entry0.latency")
        .expect("latency hist");
    assert_eq!(latency.count(), 40);
    assert!(latency.min() > 0, "transitions take at least a cycle");

    // Round trip through the serialized document.
    let parsed = Json::parse(&snap.to_json_string()).expect("snapshot JSON parses");
    assert_eq!(
        parsed.get("cycles").and_then(Json::as_f64),
        Some(core.state.perf.cycles as f64)
    );
    assert_eq!(
        parsed
            .get("transition.entry0.latency")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_f64),
        Some(40.0)
    );
}
