//! Differential soundness of the `metal-lint` static analyzer,
//! validated against both execution engines.
//!
//! The analyzer's contract is one-directional: a *clean* verdict is a
//! proof, a *denial* is a prediction, an *unknown* is an abstention.
//! These tests check the proof direction on real executions:
//!
//! * a grammar sweep where every generated case must produce **zero
//!   false-clean verdicts** — no unit that lints clean for privilege
//!   or MRAM bounds may raise the corresponding fault on either
//!   engine;
//! * mutated cases with **injected bugs** (an out-of-bounds `mst`, a
//!   Metal-only `rmr` in the guest) that must each be caught
//!   statically, so the runtime fault they raise *agrees* with the
//!   lint instead of contradicting it;
//! * the two named examples from the analyzer's spec — an `m31`
//!   clobber and an out-of-bounds `mst` — caught with source-span
//!   diagnostics pointing at the offending line.

use metal_fuzz::exec::{BugKind, CaseRunner};
use metal_fuzz::grammar;
use metal_fuzz::lint::{check_case, lint_case, Claim};
use metal_lint::{lint_source, Check, Level, LintConfig, MRAM_BASE};
use metal_trace::EventKind;

const SWEEP_SEEDS: u64 = 80;

/// Generated programs execute all over the grammar's surface (MRAM
/// data, delegation, interception, self-modifying guests); none may
/// contradict its own lint verdict on either engine.
#[test]
fn grammar_sweep_has_zero_false_clean_verdicts() {
    let mut runner = CaseRunner::new(BugKind::None);
    let mut checked = 0u64;
    for seed in 0..SWEEP_SEEDS {
        let case = grammar::generate(seed);
        let Ok(result) = runner.run(&case) else {
            continue;
        };
        if result.hang {
            continue;
        }
        let finding = check_case(&case, &result.core.events, &result.interp.events)
            .expect("generated cases assemble");
        assert_eq!(finding, None, "seed {seed}: {finding:?}");
        checked += 1;
    }
    assert!(checked >= SWEEP_SEEDS / 2, "only {checked} cases checked");
}

/// Injects a statically-visible out-of-bounds `mst` into the first
/// mroutine of each generated case. Lint must deny the bounds check on
/// every mutated routine; when the routine actually runs and faults,
/// the soundness oracle must report agreement, not a finding.
#[test]
fn injected_oob_store_is_always_caught_statically() {
    let mut runner = CaseRunner::new(BugKind::None);
    let mut faulted = 0u64;
    for seed in 0..SWEEP_SEEDS {
        let mut case = grammar::generate(seed);
        let Some(routine) = case.routines.first_mut() else {
            continue;
        };
        routine.src = format!("li t5, 4096\nmst a0, 0(t5)\n{}", routine.src);
        let lint = lint_case(&case).expect("mutated case assembles");
        assert_eq!(
            lint.routines[0].bounds_claim(),
            Claim::Denied,
            "seed {seed}: injected OOB store not denied"
        );
        let Ok(result) = runner.run(&case) else {
            continue; // the loader may refuse other aspects; fine
        };
        if result.hang {
            continue;
        }
        let store_fault = result
            .core
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Trap { code: 7, pc, .. } if pc >= MRAM_BASE));
        if store_fault {
            faulted += 1;
        }
        let finding = check_case(&case, &result.core.events, &result.interp.events).unwrap();
        assert_eq!(finding, None, "seed {seed}: denial misread as false-clean");
    }
    assert!(
        faulted >= 3,
        "expected several mutated cases to fault at runtime, got {faulted}"
    );
}

/// Injects a Metal-only `rmr` as the guest's first instruction. Lint
/// must deny guest privilege on every mutated case, and the runtime
/// illegal-instruction trap the instruction raises must agree.
#[test]
fn injected_metal_insn_in_guest_is_always_caught_statically() {
    let mut runner = CaseRunner::new(BugKind::None);
    let mut trapped = 0u64;
    for seed in 0..20 {
        let mut case = grammar::generate(seed);
        case.guest = format!("rmr t6, m0\n{}", case.guest);
        let lint = lint_case(&case).expect("mutated case assembles");
        assert_eq!(
            lint.guest.privilege_claim(),
            Claim::Denied,
            "seed {seed}: injected Metal-only instruction not denied"
        );
        let Ok(result) = runner.run(&case) else {
            continue;
        };
        // No delegation handles IllegalInstruction, so the trap loops
        // through an unprogrammed vector and the run counts as a hang;
        // the trap *events* are still on the stream and still judged.
        let illegal_trap = result
            .core
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Trap { code: 2, pc, .. } if pc < MRAM_BASE));
        if illegal_trap {
            trapped += 1;
        }
        let finding = check_case(&case, &result.core.events, &result.interp.events).unwrap();
        assert_eq!(finding, None, "seed {seed}: denial misread as false-clean");
    }
    assert!(
        trapped >= 3,
        "expected mutated guests to trap at runtime, got {trapped}"
    );
}

/// The spec's `m31`-clobber example: a constant overwrites the saved
/// return address and reaches `mexit`. The diagnostic carries the
/// source line of the offending `wmr`.
#[test]
fn m31_clobber_example_caught_with_source_span() {
    let src = "li t0, 0x100\nwmr m31, t0\nmexit";
    let diags = lint_source(src, &LintConfig::mroutine(MRAM_BASE)).unwrap();
    let d = diags
        .iter()
        .find(|d| d.check == Check::RetAddr)
        .expect("retaddr diagnostic");
    assert_eq!(d.line, Some(2), "{d:?}");
    assert!(d.col.is_some(), "{d:?}");
    assert!(d.message.contains("m31"), "{d:?}");
}

/// The spec's out-of-bounds `mst` example: a constant address one past
/// the data segment is denied, with the span of the `mst` line.
#[test]
fn oob_mst_example_caught_with_source_span() {
    let src = "li t0, 4096\nmst a0, 0(t0)\nmexit";
    let diags = lint_source(src, &LintConfig::mroutine(MRAM_BASE)).unwrap();
    let d = diags
        .iter()
        .find(|d| d.check == Check::Bounds && d.level == Level::Deny)
        .expect("bounds denial");
    assert_eq!(d.line, Some(2), "{d:?}");
    assert!(d.col.is_some(), "{d:?}");
    assert!(d.message.contains("data segment"), "{d:?}");
}
