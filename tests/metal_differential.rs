//! Property-based differential test *with Metal in the loop*: random
//! guest programs that call randomly generated (verified) mroutines
//! must leave the pipelined core and the reference interpreter in
//! identical architectural state. A second generator produces
//! self-modifying programs that patch already-executed code, pinning
//! the decode cache's generation-counter invalidation on both engines.

mod common;

use common::{boot_metal_engine, both_engines_with, CORE_LIMIT};
use metal_core::{Metal, MetalBuilder};
// The generators live in the shared `metal-fuzz` grammar now; these
// tests pin the grammar's fixed-seed behavior while `mfuzz` explores
// fresh seeds from the same code.
use metal_fuzz::grammar::{rand_guest, rand_routine, smc_guest};
use metal_isa::reg::Reg;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, HaltReason};
use metal_util::Rng;

#[test]
fn engines_agree_on_metal_programs() {
    let mut rng = Rng::new(0x3e7a_0001);
    for case in 0..96 {
        let r0 = rand_routine(&mut rng);
        let r1 = rand_routine(&mut rng);
        let guest = rand_guest(&mut rng);
        let builder = MetalBuilder::new()
            .routine(0, "r0", &r0)
            .routine(1, "r1", &r1);
        let label = format!("case {case} (r0:\n{r0}\nr1:\n{r1})");
        let pair = both_engines_with(CoreConfig::default(), builder, &guest, &label);
        assert_eq!(
            pair.core.state.regs.get(Reg::A0),
            pair.interp.state.regs.get(Reg::A0)
        );
        // Metal-side state agrees too: MRAM data and the MReg file.
        assert_eq!(pair.core.hooks.mram.data(), pair.interp.hooks.mram.data());
        for m in 0..8 {
            assert_eq!(pair.core.hooks.mregs.get(m), pair.interp.hooks.mregs.get(m));
        }
        assert_eq!(pair.core.hooks.stats, pair.interp.hooks.stats);
    }
}

#[test]
fn engines_agree_on_self_modifying_code() {
    let mut rng = Rng::new(0x0054_C0DE);
    for case in 0..24 {
        let (guest, expected) = smc_guest(&mut rng);
        let label = format!("smc case {case}");
        let pair = both_engines_with(
            CoreConfig::default(),
            MetalBuilder::new().routine(0, "noop", "mexit"),
            &guest,
            &label,
        );
        assert_eq!(
            pair.core.state.regs.get(Reg::A0),
            expected,
            "{label}: stale decode survived the store\nguest:\n{guest}"
        );
        // The store to the already-decoded line must have tripped the
        // generation counter on both engines: one invalidation from
        // load_segments, at least one from the patch.
        for (name, dc) in [
            ("core", &pair.core.state.decode_cache),
            ("interp", &pair.interp.state.decode_cache),
        ] {
            assert!(
                dc.invalidations() >= 2,
                "{label}: {name} saw {} invalidations, expected >= 2",
                dc.invalidations()
            );
        }
    }
}

#[test]
fn decode_cache_does_not_perturb_timing_under_smc() {
    // Zero-perturbation: the decode cache is a host-side optimization,
    // so switching it off must reproduce identical registers AND
    // identical cycle counts, even under self-modifying code.
    let mut rng = Rng::new(0xD15A_B1ED);
    for case in 0..8 {
        let (guest, expected) = smc_guest(&mut rng);
        let program = common::assemble_flat(&guest);
        let run = |decode_cache: bool| -> Core<Metal> {
            let config = CoreConfig {
                decode_cache,
                ..CoreConfig::default()
            };
            let builder = MetalBuilder::new().routine(0, "noop", "mexit");
            let (core, halt) =
                boot_metal_engine::<Core<Metal>>(builder, config, &program, CORE_LIMIT);
            assert!(
                matches!(halt, Some(HaltReason::Ebreak { .. })),
                "case {case}: halted with {halt:?}"
            );
            core
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.state.regs.get(Reg::A0), expected, "case {case}");
        assert_eq!(
            on.state.regs.snapshot(),
            off.state.regs.snapshot(),
            "case {case}: cache on/off diverged architecturally"
        );
        assert_eq!(
            on.state.perf.cycles, off.state.perf.cycles,
            "case {case}: decode cache perturbed cycle count"
        );
        assert!(on.state.decode_cache.enabled());
        assert!(!off.state.decode_cache.enabled());
        assert_eq!(off.state.decode_cache.hits(), 0);
    }
}
