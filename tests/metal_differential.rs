//! Property-based differential test *with Metal in the loop*: random
//! guest programs that call randomly generated (verified) mroutines
//! must leave the pipelined core and the reference interpreter in
//! identical architectural state. A second generator produces
//! self-modifying programs that patch already-executed code, pinning
//! the decode cache's generation-counter invalidation on both engines.

mod common;

use common::{boot_metal_engine, both_engines_with, CORE_LIMIT};
use metal_core::{Metal, MetalBuilder};
use metal_isa::reg::Reg;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, HaltReason};
use metal_util::Rng;

/// A tiny verified mroutine: a few arithmetic ops over a0/a1 and the
/// Metal registers, ending in mexit.
fn rand_routine(rng: &mut Rng) -> String {
    let steps = rng.range_usize(1, 8);
    let mut src = String::new();
    for _ in 0..steps {
        let step = match rng.range_u32(0, 7) {
            0 => format!("wmr m{}, a0", rng.range_u32(0, 8)),
            1 => format!("rmr t0, m{}\n add a0, a0, t0", rng.range_u32(0, 8)),
            2 => format!("addi a0, a0, {}", rng.range_i32(-64, 64)),
            3 => "slli a0, a0, 1".to_owned(),
            4 => "xor a0, a0, a1".to_owned(),
            5 => format!("mst a0, {}(zero)", rng.range_u32(0, 16) * 4),
            _ => format!(
                "mld t0, {}(zero)\n add a0, a0, t0",
                rng.range_u32(0, 16) * 4
            ),
        };
        src.push_str(&step);
        src.push('\n');
    }
    src.push_str("mexit");
    src
}

/// A guest program: seeded registers, interleaved arithmetic and
/// menter calls to the two routines, ebreak.
fn rand_guest(rng: &mut Rng) -> String {
    let a0 = rng.range_i32(-1000, 1000);
    let a1 = rng.range_i32(-1000, 1000);
    let steps = rng.range_usize(1, 20);
    let mut body = String::new();
    for _ in 0..steps {
        // Weights: 3 addi, 2 menter 0, 2 menter 1, 1 add, 1 mul.
        let step = match rng.range_u32(0, 9) {
            0..=2 => format!("addi a0, a0, {}", rng.range_i32(-512, 512)),
            3..=4 => "menter 0".to_owned(),
            5..=6 => "menter 1".to_owned(),
            7 => "add a1, a1, a0".to_owned(),
            _ => "mul a0, a0, a1".to_owned(),
        };
        body.push_str(&step);
        body.push('\n');
    }
    format!("li a0, {a0}\nli a1, {a1}\n{body}ebreak")
}

#[test]
fn engines_agree_on_metal_programs() {
    let mut rng = Rng::new(0x3e7a_0001);
    for case in 0..96 {
        let r0 = rand_routine(&mut rng);
        let r1 = rand_routine(&mut rng);
        let guest = rand_guest(&mut rng);
        let builder = MetalBuilder::new()
            .routine(0, "r0", &r0)
            .routine(1, "r1", &r1);
        let label = format!("case {case} (r0:\n{r0}\nr1:\n{r1})");
        let pair = both_engines_with(CoreConfig::default(), builder, &guest, &label);
        assert_eq!(
            pair.core.state.regs.get(Reg::A0),
            pair.interp.state.regs.get(Reg::A0)
        );
        // Metal-side state agrees too: MRAM data and the MReg file.
        assert_eq!(pair.core.hooks.mram.data(), pair.interp.hooks.mram.data());
        for m in 0..8 {
            assert_eq!(pair.core.hooks.mregs.get(m), pair.interp.hooks.mregs.get(m));
        }
        assert_eq!(pair.core.hooks.stats, pair.interp.hooks.stats);
    }
}

/// A self-modifying guest: a loop whose head instruction (`slot`) is
/// overwritten mid-flight with a different `addi` immediate, so later
/// passes execute the patched instruction. The store lands on a line
/// that has already been fetched and decoded — exactly the case the
/// decode cache's generation counter must catch.
///
/// Oracle: pass 1 executes `addi a0, a0, imm1`; the remaining
/// `passes-1` iterations execute the patched `addi a0, a0, imm2`. An
/// engine serving stale decoded state gets a different a0 even when
/// both engines are equally stale, so this is checked against the
/// closed form, not just cross-engine.
fn smc_guest(rng: &mut Rng) -> (String, u32) {
    let passes = rng.range_u32(2, 5) as i32;
    let imm1 = rng.range_i32(-100, 100);
    let imm2 = rng.range_i32(-100, 100);
    let patched =
        metal_asm::assemble_at(&format!("addi a0, a0, {imm2}"), 0).expect("patch assembles")[0];
    let src = format!(
        r"
        li a0, 0
        li s1, {passes}
    loop:
    slot:
        addi a0, a0, {imm1}
        la t0, slot
        li t1, {patched}
        sw t1, 0(t0)
        addi s1, s1, -1
        bnez s1, loop
        ebreak
        "
    );
    let expected = (imm1 as u32).wrapping_add((imm2 as u32).wrapping_mul((passes - 1) as u32));
    (src, expected)
}

#[test]
fn engines_agree_on_self_modifying_code() {
    let mut rng = Rng::new(0x0054_C0DE);
    for case in 0..24 {
        let (guest, expected) = smc_guest(&mut rng);
        let label = format!("smc case {case}");
        let pair = both_engines_with(
            CoreConfig::default(),
            MetalBuilder::new().routine(0, "noop", "mexit"),
            &guest,
            &label,
        );
        assert_eq!(
            pair.core.state.regs.get(Reg::A0),
            expected,
            "{label}: stale decode survived the store\nguest:\n{guest}"
        );
        // The store to the already-decoded line must have tripped the
        // generation counter on both engines: one invalidation from
        // load_segments, at least one from the patch.
        for (name, dc) in [
            ("core", &pair.core.state.decode_cache),
            ("interp", &pair.interp.state.decode_cache),
        ] {
            assert!(
                dc.invalidations() >= 2,
                "{label}: {name} saw {} invalidations, expected >= 2",
                dc.invalidations()
            );
        }
    }
}

#[test]
fn decode_cache_does_not_perturb_timing_under_smc() {
    // Zero-perturbation: the decode cache is a host-side optimization,
    // so switching it off must reproduce identical registers AND
    // identical cycle counts, even under self-modifying code.
    let mut rng = Rng::new(0xD15A_B1ED);
    for case in 0..8 {
        let (guest, expected) = smc_guest(&mut rng);
        let program = common::assemble_flat(&guest);
        let run = |decode_cache: bool| -> Core<Metal> {
            let config = CoreConfig {
                decode_cache,
                ..CoreConfig::default()
            };
            let builder = MetalBuilder::new().routine(0, "noop", "mexit");
            let (core, halt) =
                boot_metal_engine::<Core<Metal>>(builder, config, &program, CORE_LIMIT);
            assert!(
                matches!(halt, Some(HaltReason::Ebreak { .. })),
                "case {case}: halted with {halt:?}"
            );
            core
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.state.regs.get(Reg::A0), expected, "case {case}");
        assert_eq!(
            on.state.regs.snapshot(),
            off.state.regs.snapshot(),
            "case {case}: cache on/off diverged architecturally"
        );
        assert_eq!(
            on.state.perf.cycles, off.state.perf.cycles,
            "case {case}: decode cache perturbed cycle count"
        );
        assert!(on.state.decode_cache.enabled());
        assert!(!off.state.decode_cache.enabled());
        assert_eq!(off.state.decode_cache.hits(), 0);
    }
}
