//! Property-based differential test *with Metal in the loop*: random
//! guest programs that call randomly generated (verified) mroutines
//! must leave the pipelined core and the reference interpreter in
//! identical architectural state.

use metal_core::{Metal, MetalBuilder};
use metal_isa::reg::Reg;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, HaltReason, Interp};
use metal_util::Rng;

/// A tiny verified mroutine: a few arithmetic ops over a0/a1 and the
/// Metal registers, ending in mexit.
fn rand_routine(rng: &mut Rng) -> String {
    let steps = rng.range_usize(1, 8);
    let mut src = String::new();
    for _ in 0..steps {
        let step = match rng.range_u32(0, 7) {
            0 => format!("wmr m{}, a0", rng.range_u32(0, 8)),
            1 => format!("rmr t0, m{}\n add a0, a0, t0", rng.range_u32(0, 8)),
            2 => format!("addi a0, a0, {}", rng.range_i32(-64, 64)),
            3 => "slli a0, a0, 1".to_owned(),
            4 => "xor a0, a0, a1".to_owned(),
            5 => format!("mst a0, {}(zero)", rng.range_u32(0, 16) * 4),
            _ => format!(
                "mld t0, {}(zero)\n add a0, a0, t0",
                rng.range_u32(0, 16) * 4
            ),
        };
        src.push_str(&step);
        src.push('\n');
    }
    src.push_str("mexit");
    src
}

/// A guest program: seeded registers, interleaved arithmetic and
/// menter calls to the two routines, ebreak.
fn rand_guest(rng: &mut Rng) -> String {
    let a0 = rng.range_i32(-1000, 1000);
    let a1 = rng.range_i32(-1000, 1000);
    let steps = rng.range_usize(1, 20);
    let mut body = String::new();
    for _ in 0..steps {
        // Weights: 3 addi, 2 menter 0, 2 menter 1, 1 add, 1 mul.
        let step = match rng.range_u32(0, 9) {
            0..=2 => format!("addi a0, a0, {}", rng.range_i32(-512, 512)),
            3..=4 => "menter 0".to_owned(),
            5..=6 => "menter 1".to_owned(),
            7 => "add a1, a1, a0".to_owned(),
            _ => "mul a0, a0, a1".to_owned(),
        };
        body.push_str(&step);
        body.push('\n');
    }
    format!("li a0, {a0}\nli a1, {a1}\n{body}ebreak")
}

#[test]
fn engines_agree_on_metal_programs() {
    let mut rng = Rng::new(0x3e7a_0001);
    for case in 0..96 {
        let r0 = rand_routine(&mut rng);
        let r1 = rand_routine(&mut rng);
        let guest = rand_guest(&mut rng);
        let (metal, _, _) = MetalBuilder::new()
            .routine(0, "r0", &r0)
            .routine(1, "r1", &r1)
            .build()
            .expect("generated routines verify");
        let words = metal_asm::assemble_at(&guest, 0).expect("guest assembles");
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();

        let mut core = Core::new(CoreConfig::default(), metal.clone());
        core.load_segments([(0u32, bytes.as_slice())], 0);
        let core_halt = core.run(5_000_000);

        let mut interp: Interp<Metal> = Interp::new(CoreConfig::default(), metal);
        interp.load_segments([(0u32, bytes.as_slice())], 0);
        let interp_halt = interp.run(2_000_000);

        assert_eq!(
            &core_halt, &interp_halt,
            "case {case}: halt diverged\nguest:\n{guest}"
        );
        let is_ebreak = matches!(core_halt, Some(HaltReason::Ebreak { .. }));
        assert!(is_ebreak, "case {case}: program must halt via ebreak");
        assert_eq!(
            core.state.regs.snapshot(),
            interp.state.regs.snapshot(),
            "case {case}: registers diverged\nguest:\n{guest}\nr0:\n{r0}\nr1:\n{r1}"
        );
        assert_eq!(core.state.regs.get(Reg::A0), interp.state.regs.get(Reg::A0));
        // Metal-side state agrees too: MRAM data and the MReg file.
        assert_eq!(core.hooks.mram.data(), interp.hooks.mram.data());
        for m in 0..8 {
            assert_eq!(core.hooks.mregs.get(m), interp.hooks.mregs.get(m));
        }
        assert_eq!(core.hooks.stats, interp.hooks.stats);
    }
}
