//! Property-based differential test *with Metal in the loop*: random
//! guest programs that call randomly generated (verified) mroutines
//! must leave the pipelined core and the reference interpreter in
//! identical architectural state.

use metal_core::{Metal, MetalBuilder};
use metal_isa::reg::Reg;
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, HaltReason, Interp};
use proptest::prelude::*;

/// A tiny verified mroutine: a few arithmetic ops over a0/a1 and the
/// Metal registers, ending in mexit.
fn arb_routine() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0u8..8).prop_map(|m| format!("wmr m{m}, a0")),
        (0u8..8).prop_map(|m| format!("rmr t0, m{m}\n add a0, a0, t0")),
        (-64i32..64).prop_map(|imm| format!("addi a0, a0, {imm}")),
        Just("slli a0, a0, 1".to_owned()),
        Just("xor a0, a0, a1".to_owned()),
        (0u32..16).prop_map(|slot| format!("mst a0, {}(zero)", slot * 4)),
        (0u32..16).prop_map(|slot| format!("mld t0, {}(zero)\n add a0, a0, t0", slot * 4)),
    ];
    proptest::collection::vec(step, 1..8).prop_map(|steps| {
        let mut src = steps.join("\n");
        src.push_str("\nmexit");
        src
    })
}

/// A guest program: seeded registers, interleaved arithmetic and
/// menter calls to the two routines, ebreak.
fn arb_guest() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        3 => (-512i32..512).prop_map(|imm| format!("addi a0, a0, {imm}")),
        2 => Just("menter 0".to_owned()),
        2 => Just("menter 1".to_owned()),
        1 => Just("add a1, a1, a0".to_owned()),
        1 => Just("mul a0, a0, a1".to_owned()),
    ];
    (
        -1000i32..1000,
        -1000i32..1000,
        proptest::collection::vec(step, 1..20),
    )
        .prop_map(|(a0, a1, steps)| {
            format!(
                "li a0, {a0}\nli a1, {a1}\n{}\nebreak",
                steps.join("\n")
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_agree_on_metal_programs(
        r0 in arb_routine(),
        r1 in arb_routine(),
        guest in arb_guest(),
    ) {
        let (metal, _, _) = MetalBuilder::new()
            .routine(0, "r0", &r0)
            .routine(1, "r1", &r1)
            .build()
            .expect("generated routines verify");
        let words = metal_asm::assemble_at(&guest, 0).expect("guest assembles");
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();

        let mut core = Core::new(CoreConfig::default(), metal.clone());
        core.load_segments([(0u32, bytes.as_slice())], 0);
        let core_halt = core.run(5_000_000);

        let mut interp: Interp<Metal> = Interp::new(CoreConfig::default(), metal);
        interp.load_segments([(0u32, bytes.as_slice())], 0);
        let interp_halt = interp.run(2_000_000);

        prop_assert_eq!(&core_halt, &interp_halt, "halt diverged\nguest:\n{}", &guest);
        let is_ebreak = matches!(core_halt, Some(HaltReason::Ebreak { .. }));
        prop_assert!(is_ebreak, "program must halt via ebreak");
        prop_assert_eq!(
            core.state.regs.snapshot(),
            interp.state.regs.snapshot(),
            "registers diverged\nguest:\n{}\nr0:\n{}\nr1:\n{}",
            &guest, &r0, &r1
        );
        prop_assert_eq!(
            core.state.regs.get(Reg::A0),
            interp.state.regs.get(Reg::A0)
        );
        // Metal-side state agrees too: MRAM data and the MReg file.
        prop_assert_eq!(core.hooks.mram.data(), interp.hooks.mram.data());
        for m in 0..8 {
            prop_assert_eq!(core.hooks.mregs.get(m), interp.hooks.mregs.get(m));
        }
        prop_assert_eq!(core.hooks.stats, interp.hooks.stats);
    }
}
