//! Shared engine-generic test harness.
//!
//! Every cross-crate test that exercises both execution engines goes
//! through these helpers, which are written once against
//! [`metal_pipeline::Engine`]: boot a Metal-enabled machine of either
//! engine type, run a guest, and (for differential tests) assert the
//! two engines ended in identical architectural state.

#![allow(dead_code)]

use metal_core::{Metal, MetalBuilder};
use metal_mem::devices::{map, Console, Timer};
use metal_pipeline::state::CoreConfig;
use metal_pipeline::{Core, Engine, HaltReason, Interp};

/// Cycle budget for differential runs on the pipelined core.
pub const CORE_LIMIT: u64 = 10_000_000;
/// Step budget for differential runs on the interpreter.
pub const INTERP_LIMIT: u64 = 5_000_000;

/// Assembles a guest program against address 0.
pub fn assemble_flat(src: &str) -> Vec<u8> {
    let words = metal_asm::assemble_at(src, 0).expect("guest assembles");
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Builds a Metal-enabled engine from `builder`, loads `program` at 0,
/// and runs it for up to `limit` units.
pub fn boot_metal_engine<E: Engine<Hooks = Metal>>(
    builder: MetalBuilder,
    config: CoreConfig,
    program: &[u8],
    limit: u64,
) -> (E, Option<HaltReason>) {
    let mut engine = builder.build_engine::<E>(config).expect("machine builds");
    engine.load_segments([(0u32, program)], 0);
    let halt = engine.run(limit);
    (engine, halt)
}

/// The result of running the same program on both engines: the shared
/// `ebreak` code plus each halted machine for state-specific asserts.
pub struct EnginePair {
    /// The guest's `ebreak` exit code (identical on both engines).
    pub code: u32,
    /// The halted pipelined core.
    pub core: Core<Metal>,
    /// The halted reference interpreter.
    pub interp: Interp<Metal>,
}

/// Runs `src` on both engines with the default configuration; asserts
/// identical halt and register state.
pub fn both_engines(builder: MetalBuilder, src: &str) -> EnginePair {
    both_engines_with(CoreConfig::default(), builder, src, "differential")
}

/// Runs `src` on both engines, asserting identical halt reason and
/// register file; `label` prefixes assertion messages.
pub fn both_engines_with(
    config: CoreConfig,
    builder: MetalBuilder,
    src: &str,
    label: &str,
) -> EnginePair {
    let program = assemble_flat(src);
    let (core, core_halt) =
        boot_metal_engine::<Core<Metal>>(builder.clone(), config, &program, CORE_LIMIT);
    let (interp, interp_halt) =
        boot_metal_engine::<Interp<Metal>>(builder, config, &program, INTERP_LIMIT);
    assert_eq!(
        core_halt, interp_halt,
        "{label}: halt reasons diverged\nguest:\n{src}"
    );
    assert_eq!(
        core.state.regs.snapshot(),
        interp.state.regs.snapshot(),
        "{label}: register files diverged\nguest:\n{src}"
    );
    let code = match core_halt {
        Some(HaltReason::Ebreak { code }) => code,
        other => panic!("{label}: expected ebreak, got {other:?}\nguest:\n{src}"),
    };
    EnginePair { code, core, interp }
}

/// A booted full system: the halted engine, its halt reason, and the
/// bytes the guest wrote to the console.
pub struct BootedSystem<E> {
    pub engine: E,
    pub halt: Option<HaltReason>,
    pub console: Vec<u8>,
}

/// Boots a Metal system with console (and optionally timer) devices
/// attached and runs a guest assembled with the standard `metal-ext`
/// layout. The engine type is a parameter: full-system tests run the
/// same scenario on the pipeline and the interpreter.
pub fn run_system_on<E: Engine<Hooks = Metal>>(
    builder: MetalBuilder,
    src: &str,
    limit: u64,
    with_timer: bool,
) -> BootedSystem<E> {
    let mut engine = builder
        .build_engine::<E>(CoreConfig::default())
        .expect("system builds");
    let (console, out) = Console::new();
    engine
        .state_mut()
        .bus
        .attach(map::CONSOLE_BASE, map::WINDOW_LEN, Box::new(console));
    if with_timer {
        engine
            .state_mut()
            .bus
            .attach(map::TIMER_BASE, map::WINDOW_LEN, Box::new(Timer::new()));
    }
    let halt = metal_ext::machine::run_guest(&mut engine, src, limit);
    let console = out.lock().clone();
    BootedSystem {
        engine,
        halt,
        console,
    }
}
