//! Delegation-map edge cases at the system level: delivery ordering
//! between a delegated mroutine and the baseline `mtvec` fallback,
//! undelegation restoring the fallback, and builder-level rejection
//! of malformed delegations.

use metal_core::{Metal, MetalBuilder, MetalError};
use metal_pipeline::state::CoreConfig;
use metal_pipeline::trap::TrapCause;
use metal_pipeline::{Core, Engine, HaltReason};

/// Guest: jump over an `mtvec` handler at address 4, then trap with
/// `ecall`. The delegated mroutine resumes after the `ecall` (exit
/// code 7); the `mtvec` fallback lands in the handler (exit code 99).
const GUEST: &str = "\
j start
li a0, 99
ebreak
start:
li a0, 1
ecall
ebreak";

/// Skip-and-mark mroutine: sets `a0`, advances `m31` past the
/// faulting instruction, returns.
fn marker_routine(value: u32) -> String {
    format!("li a0, {value}\nrmr t0, m31\naddi t0, t0, 4\nwmr m31, t0\nmexit")
}

const MTVEC_HANDLER: u32 = 4;

fn run_guest(builder: MetalBuilder) -> (Core<Metal>, HaltReason) {
    let mut core = builder
        .build_core(CoreConfig::default())
        .expect("machine builds");
    core.state_mut().csr.mtvec = MTVEC_HANDLER;
    let words = metal_asm::assemble_at(GUEST, 0).expect("guest assembles");
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);
    let halt = core.run_fuel(100_000);
    (core, halt)
}

#[test]
fn delegated_mroutine_beats_mtvec_fallback() {
    let (_, halt) = run_guest(
        MetalBuilder::new()
            .routine(0, "mark", &marker_routine(7))
            .delegate_exception(TrapCause::Ecall, 0),
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 7 });
}

#[test]
fn undelegated_cause_falls_back_to_mtvec() {
    let (core, halt) = run_guest(MetalBuilder::new().routine(0, "mark", &marker_routine(7)));
    assert_eq!(halt, HaltReason::Ebreak { code: 99 });
    assert_eq!(core.hooks.stats.delegated_exceptions, 0);
}

#[test]
fn specific_delegation_beats_catch_all_at_delivery() {
    let (_, halt) = run_guest(
        MetalBuilder::new()
            .routine(0, "specific", &marker_routine(7))
            .routine(1, "catchall", &marker_routine(8))
            .delegate_exception(TrapCause::Ecall, 0)
            .delegate_all_exceptions(1),
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 7 });
}

#[test]
fn catch_all_handles_unlisted_causes() {
    let (_, halt) = run_guest(
        MetalBuilder::new()
            .routine(1, "catchall", &marker_routine(8))
            .delegate_all_exceptions(1),
    );
    assert_eq!(halt, HaltReason::Ebreak { code: 8 });
}

#[test]
fn undelegation_at_runtime_restores_fallback() {
    let builder = MetalBuilder::new()
        .routine(0, "mark", &marker_routine(7))
        .delegate_exception(TrapCause::Ecall, 0);
    let mut core = builder
        .clone()
        .build_core(CoreConfig::default())
        .expect("machine builds");
    core.hooks.layers[0]
        .delegation
        .undelegate_exception(TrapCause::Ecall)
        .expect("valid undelegation");
    core.state_mut().csr.mtvec = MTVEC_HANDLER;
    let words = metal_asm::assemble_at(GUEST, 0).expect("guest assembles");
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    core.load_segments([(0u32, bytes.as_slice())], 0);
    assert_eq!(core.run_fuel(100_000), HaltReason::Ebreak { code: 99 });

    // The untouched builder still delivers to the mroutine.
    let (_, halt) = run_guest(builder);
    assert_eq!(halt, HaltReason::Ebreak { code: 7 });
}

#[test]
fn builder_rejects_out_of_table_entry() {
    let err = MetalBuilder::new()
        .routine(0, "mark", &marker_routine(7))
        .delegate_exception(TrapCause::Ecall, 64)
        .build()
        .unwrap_err();
    assert!(matches!(err, MetalError::BadEntry { entry: 64 }));
}

#[test]
fn builder_rejects_interrupt_cause_on_exception_api() {
    let err = MetalBuilder::new()
        .routine(0, "mark", &marker_routine(7))
        .delegate_exception(TrapCause::Interrupt(3), 0)
        .build()
        .unwrap_err();
    assert!(matches!(err, MetalError::BadCause { .. }));
}
