//! The pipelined core and the reference interpreter must agree on
//! *Metal* semantics, not just the base ISA: both engines run the same
//! hook implementation, so every mroutine scenario should end in the
//! same architectural state.

mod common;

use common::both_engines;
use metal_core::{Metal, MetalBuilder};

/// Runs `src` on both engines via the shared harness and hands back the
/// `ebreak` code plus each engine's Metal hook state.
fn both_engine_hooks(builder: MetalBuilder, src: &str) -> (u32, Metal, Metal) {
    let pair = both_engines(builder, src);
    (pair.code, pair.core.hooks, pair.interp.hooks)
}

#[test]
fn menter_mexit_agree() {
    let builder =
        MetalBuilder::new().routine(0, "triple", "slli t6, a0, 1\n add a0, a0, t6\n mexit");
    let (code, ch, ih) = both_engine_hooks(builder, "li a0, 7\n menter 0\n ebreak");
    assert_eq!(code, 21);
    assert_eq!(ch.stats, ih.stats);
}

#[test]
fn mram_data_state_agrees() {
    let builder = MetalBuilder::new().routine(
        0,
        "count",
        "mld t0, 0(zero)\n addi t0, t0, 1\n mst t0, 0(zero)\n mv a0, t0\n mexit",
    );
    let (code, ch, ih) = both_engine_hooks(
        builder,
        "menter 0\n menter 0\n menter 0\n menter 0\n ebreak",
    );
    assert_eq!(code, 4);
    assert_eq!(ch.mram.data()[0..4], ih.mram.data()[0..4]);
}

#[test]
fn interception_agrees() {
    let builder = MetalBuilder::new()
        .routine(
            1,
            "arm",
            "li t0, 0x03\n li t1, 5\n mintercept t0, t1\n li t0, 1\n wmr mstatus, t0\n mexit",
        )
        .routine(
            2,
            "double_loads",
            r"
            mpld t1, s0
            slli a3, t1, 1
            rmr t2, m31
            addi t2, t2, 4
            wmr m31, t2
            mexit
            ",
        );
    let src = r"
        li s0, 0x4000
        li t0, 15
        sw t0, 0(s0)
        menter 1
        lw a3, 0(s0)
        mv a0, a3
        ebreak
    ";
    let (code, ch, ih) = both_engine_hooks(builder, src);
    assert_eq!(code, 30);
    assert_eq!(ch.stats.intercepts, 1);
    assert_eq!(ch.stats, ih.stats);
}

#[test]
fn delegation_agrees() {
    let builder = MetalBuilder::new()
        .routine(
            0,
            "sys",
            "slli a0, a0, 2\n rmr t0, m31\n addi t0, t0, 4\n wmr m31, t0\n mexit",
        )
        .delegate_exception(metal_pipeline::TrapCause::Ecall, 0);
    let (code, ch, ih) = both_engine_hooks(builder, "li a0, 5\n ecall\n addi a0, a0, 1\n ebreak");
    assert_eq!(code, 21);
    assert_eq!(ch.stats.delegated_exceptions, 1);
    assert_eq!(ch.stats, ih.stats);
}

#[test]
fn palcode_dispatch_agrees() {
    let builder =
        MetalBuilder::new()
            .palcode(0x20_0000)
            .routine(0, "inc", "addi a0, a0, 1\n mexit");
    let (code, _, _) = both_engine_hooks(builder, "li a0, 1\n menter 0\n menter 0\n ebreak");
    assert_eq!(code, 3);
}

#[test]
fn nested_layers_agree() {
    let builder = MetalBuilder::new()
        .layers(2)
        .routine(
            1,
            "l1",
            r"
            rmr t1, m31
            wmr m2, t1
            sw a1, 0(s0)
            rmr t1, m2
            addi t1, t1, 4
            wmr m31, t1
            mexit
            ",
        )
        .routine(
            2,
            "l0",
            r"
            mpst s0, a1
            rmr t1, m31
            addi t1, t1, 4
            wmr m31, t1
            mexit
            ",
        )
        .routine(
            3,
            "arm",
            r"
            mlayer zero
            li t0, 0x23
            li t1, 5
            mintercept t0, t1
            li t2, 1
            mlayer t2
            li t1, 3
            mintercept t0, t1
            li t2, 1
            wmr mstatus, t2
            mexit
            ",
        );
    let src = r"
        li s0, 0x4000
        li a1, 33
        menter 3
        sw a1, 0(s0)
        lw a0, 0(s0)
        ebreak
    ";
    let (code, ch, ih) = both_engine_hooks(builder, src);
    assert_eq!(code, 33);
    assert_eq!(ch.stats.intercepts, 2);
    assert_eq!(ch.stats, ih.stats);
}
