//! Replays the committed corpus under `tests/corpus/`: every artifact
//! must still assemble, run divergence-free on all three machines
//! (core with and without the decode cache, and the interpreter), and
//! reproduce its recorded final state. These artifacts were produced by
//! real `mfuzz` campaigns, chosen to cover the grammar's profiles:
//! self-modifying code, soft-TLB with page-fault delegation,
//! instruction interception, and the `march.*` system routine.

use metal_fuzz::artifact;
use metal_fuzz::exec::BugKind;

#[test]
fn committed_corpus_replays_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "s"))
        .collect();
    entries.sort();
    for path in entries {
        let content = std::fs::read_to_string(&path).unwrap();
        artifact::replay(&content, BugKind::None)
            .unwrap_or_else(|e| panic!("{} failed replay: {e}", path.display()));
        replayed += 1;
    }
    assert!(
        replayed >= 4,
        "expected the committed corpus, found {replayed}"
    );
}

#[test]
fn corpus_covers_distinct_profiles() {
    // The committed set is small but deliberately diverse; keep it so.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let all: String = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| std::fs::read_to_string(e.unwrap().path()).unwrap())
        .collect();
    for marker in [
        "slot:",
        "softtlb 1",
        "delegate",
        "mintercept",
        "routine 6 sys",
    ] {
        assert!(
            all.contains(marker),
            "no committed artifact exercises {marker:?}"
        );
    }
}
